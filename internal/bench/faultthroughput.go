package bench

import (
	"context"
	"fmt"
	"time"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/fault"
	"mcn/internal/storage"
)

// The fault-throughput experiment measures what the retry/backoff layer costs
// when the device misbehaves: the same mixed top-k/nearest workload runs once
// against a healthy device ("clean") and once with seeded transient faults
// injected on faultReadTransient of all reads ("faulty"). The faulty row's
// io_retries records the retries the pool absorbed per query; a change in the
// retry path's cost shows up as the faulty row's QPS drifting away from the
// clean row's, and a change in retry *behaviour* (retrying more or less than
// the schedule intends) shows up directly in io_retries.
const faultRounds = 2

var (
	// faultReadTransient is the injected transient-read probability — the
	// acceptance floor of the chaos harness (>= 5% of reads).
	faultReadTransient = 0.05
	// faultWorkers pins the executor parallelism (machine-independent rows).
	faultWorkers = 4
	// faultRetry keeps the backoff schedule microsecond-scale so the smoke
	// stays fast; the ratio retries/reads is what the gate watches, and that
	// is independent of the sleep lengths.
	faultRetry = storage.RetryPolicy{MaxRetries: 3, BaseBackoff: 100 * time.Microsecond, MaxBackoff: 2 * time.Millisecond}
)

// runFaultThroughput measures clean-vs-faulty queries/sec and the per-query
// retry count over one shared disk-resident dataset.
func runFaultThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}
	fd := fault.Wrap(ds.Dev, fault.Options{Seed: uint64(cfg.Seed), ReadTransient: faultReadTransient})

	var reqs []engine.Request
	for r := 0; r < faultRounds; r++ {
		for i, q := range ds.Queries {
			if i%2 == 0 {
				reqs = append(reqs, engine.Request{Kind: engine.TopK, Loc: q, Agg: ds.Aggs[i], K: w.K, Opts: core.Options{Engine: core.CEA}})
			} else {
				reqs = append(reqs, engine.Request{Kind: engine.Nearest, Loc: q, CostIdx: 0, K: w.K})
			}
		}
	}

	pt := Point{Param: fmt.Sprintf("p=%g", faultReadTransient)}
	for _, mode := range []struct {
		name  string
		armed bool
	}{{"clean", false}, {"faulty", true}} {
		// A fresh network per mode: both start from a cold pool, so the rows
		// differ only in whether injection is armed.
		net, err := storage.OpenOptions(fd, w.Buffer, storage.PoolOptions{Shards: 8, Retry: faultRetry})
		if err != nil {
			return nil, err
		}
		if mode.armed {
			fd.Arm()
		}
		exec := engine.New(net, engine.Config{Workers: faultWorkers})
		var results int
		start := time.Now()
		for _, resp := range exec.Execute(context.Background(), reqs) {
			if resp.Err != nil {
				// With MaxConsecutive (2) below the retry budget (3) every
				// transient run must be absorbed; a surfaced error is a retry-
				// layer bug, not a measurement.
				return nil, fmt.Errorf("faultthroughput %s: %w", mode.name, resp.Err)
			}
			results += len(resp.Result.Facilities)
		}
		wall := time.Since(start).Seconds()
		fd.Disarm()
		stats := net.Stats()
		fs := net.FailureStats()
		n := float64(len(reqs))
		pt.Rows = append(pt.Rows, Row{
			Algo:       mode.name,
			QPS:        n / wall,
			SimSeconds: wall / n,
			CPUSeconds: exec.Stats().MeanLatency().Seconds(),
			PhysIO:     float64(stats.Physical) / n,
			LogicalIO:  float64(stats.Logical) / n,
			ResultSize: float64(results) / n,
			IORetries:  float64(fs.Retries) / n,
		})
	}
	return []Point{pt}, nil
}
