package bench

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a concurrency-safe log-linear latency histogram: values below
// histSub microseconds get one bucket each, and every power-of-two octave
// above is split into histSub sub-buckets, bounding a quantile's relative
// error at 1/histSub (~3%) over the whole range with one flat counter array
// and no locks — the soak clients record into it from every goroutine.
type Hist struct {
	counts [histBuckets]atomic.Int64
	n      atomic.Int64
}

const (
	histSub = 32
	// Exponents 5..63 each contribute histSub buckets after the linear
	// region's histSub, so uint64 microsecond values can never overflow the
	// array.
	histBuckets = 60 * histSub
)

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us uint64) int {
	if us < histSub {
		return int(us)
	}
	exp := uint(bits.Len64(us)) - 1
	return int((uint64(exp)-4)*histSub + (us >> (exp - 5)) - histSub)
}

// bucketValue returns a bucket's lower bound, saturating at the maximum
// Duration for the top octaves a Duration-sized sample can never reach.
func bucketValue(idx int) time.Duration {
	if idx < histSub {
		return time.Duration(idx) * time.Microsecond
	}
	exp := uint(idx/histSub) + 4
	off := uint64(idx % histSub)
	us := (histSub + off) << (exp - 5)
	if us > math.MaxInt64/uint64(time.Microsecond) {
		return math.MaxInt64
	}
	return time.Duration(us) * time.Microsecond
}

// Record adds one latency sample.
func (h *Hist) Record(d time.Duration) {
	var us uint64
	if d > 0 {
		us = uint64(d / time.Microsecond)
	}
	h.counts[bucketIndex(us)].Add(1)
	h.n.Add(1)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() int64 { return h.n.Load() }

// Quantile returns the latency at quantile q in (0, 1] — the lower bound of
// the bucket where the cumulative count reaches ceil(q·n).
func (h *Hist) Quantile(q float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		if cum += h.counts[i].Load(); cum >= rank {
			return bucketValue(i)
		}
	}
	return bucketValue(histBuckets - 1)
}
