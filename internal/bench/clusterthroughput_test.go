package bench

import (
	"testing"
	"time"
)

// The cluster experiment's acceptance shape: one point per backend count,
// a row per routing policy, positive QPS everywhere, and — the PR's
// headline — more replicas means more throughput. The device pacing makes
// that robust: each replica absorbs a fixed read bandwidth, so 4 replicas
// have 4x the capacity of 1 and even a loaded CI machine cannot invert the
// curve unless routing itself is broken. The latency is shrunk so the test
// stays in unit-suite budget; the committed BENCH_PR9.json baseline pins
// the full-size numbers.
func TestClusterThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	defer func(wall time.Duration, counts []int) {
		clusterMinWall, clusterBackendCounts = wall, counts
	}(clusterMinWall, clusterBackendCounts)
	// Keep the full-size device latency: shrinking it makes the in-process
	// harness CPU-bound, and on a loaded (or single-core) machine a
	// CPU-bound measurement can invert the curve. Device-bound, 4 replicas
	// have 4x the read bandwidth of 1 no matter what the CPU is doing; only
	// the window shrinks to stay inside the unit-suite budget.
	clusterMinWall = 300 * time.Millisecond
	clusterBackendCounts = []int{1, 4}

	points, err := runClusterThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(clusterBackendCounts) {
		t.Fatalf("points = %d, want %d", len(points), len(clusterBackendCounts))
	}
	qpsByPolicy := map[string][]float64{}
	for i, pt := range points {
		if len(pt.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2 (hash, least-inflight)", pt.Param, len(pt.Rows))
		}
		for _, r := range pt.Rows {
			if r.QPS <= 0 {
				t.Errorf("%s %s: QPS = %f, want > 0", pt.Param, r.Algo, r.QPS)
			}
			qpsByPolicy[r.Algo] = append(qpsByPolicy[r.Algo], r.QPS)
		}
		if want := []string{"hash", "least-inflight"}; pt.Rows[0].Algo != want[0] || pt.Rows[1].Algo != want[1] {
			t.Fatalf("%s: algos = %q, %q, want %q, %q", pt.Param, pt.Rows[0].Algo, pt.Rows[1].Algo, want[0], want[1])
		}
		_ = i
	}
	for policy, qps := range qpsByPolicy {
		if len(qps) != 2 {
			t.Fatalf("%s: measured %d backend counts, want 2", policy, len(qps))
		}
		if qps[1] <= qps[0] {
			t.Errorf("%s: QPS did not scale with replicas: 1 backend %.0f, 4 backends %.0f",
				policy, qps[0], qps[1])
		}
	}
}
