package bench

import (
	"context"
	"fmt"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/flat"
	"mcn/internal/index"
	"mcn/internal/vec"
)

const (
	// pruneWorkers is the concurrency of the QPS measurement; the expanded-
	// node counts are sums over the whole job set and therefore independent
	// of worker scheduling.
	pruneWorkers = 4
	pruneRounds  = 4
	// pruneMinJobs floors the job count so smoke-scale runs (few query
	// locations) still measure sustained throughput.
	pruneMinJobs = 200
	// pruneSparseDiv divides the default facility count for the sparse
	// points. The index's bound at a node is its distance to the nearest
	// facility, so at the paper's density (|P| ≈ 0.57·|N|) it is near zero
	// everywhere and prunes nothing — the honest dense rows document that.
	// At 1/32 of that density the bounds carry real distance and the cut is
	// the integer factor the index is for.
	pruneSparseDiv = 32
)

// runPruneThroughput measures the precomputed lower-bound pruning index on
// the in-memory fast path: the same query workload through the batch
// executor over the flat CSR source, once without the index and once with it
// attached, across facility density (the variable the index's power actually
// depends on) and query kind. Two figures come out per row: wall-clock
// queries/sec (hardware-dependent, gated loosely) and the expanded-node
// count per query (seed-deterministic, gated tightly — this is the work
// reduction the index buys, and it must not quietly erode). Query kinds:
//
//   - within: budget range query; every criterion has a hard horizon from
//     the first popped node, so the bound prunes the whole outer shell of
//     the search ball — this is where the index pays integer factors.
//   - topk/max: weighted-Chebyshev top-k; the score is its worst component,
//     so the per-component bound is tight — but admissible pruning needs the
//     k-th-score horizon, which only exists in the shrinking stage, and the
//     growing stage dominates the expansion. The row documents that the cut
//     is real yet shallow.
//   - topk: linear-aggregate top-k; additionally one component's bound must
//     exceed a 4-term sum before a node can go. The honest near-zero row.
//
// Results are byte-identical between the rows by construction; the
// equivalence suite in internal/core enforces that, this experiment only
// sizes the win.
func runPruneThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	base := cfg.DefaultWorkload()
	var points []Point
	for _, density := range []struct {
		name string
		facs int
	}{
		{"dense", base.Facilities},
		{"sparse", max(base.Facilities/pruneSparseDiv, 4)},
	} {
		w := base
		w.Facilities = density.facs
		pts, err := prunePoints(w, density.name)
		if err != nil {
			return nil, fmt.Errorf("prune %s: %w", density.name, err)
		}
		points = append(points, pts...)
	}
	return points, nil
}

// prunePoints builds one workload instance and measures every query kind on
// it, pruned and unpruned.
func prunePoints(w Workload, density string) ([]Point, error) {
	ds, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}
	fs := flat.Compile(ds.Graph)
	bounds := index.FromGraph(ds.Graph)

	// Budgets for the within point are derived once, from an unpruned probe
	// (the k-nearest score on the first criterion, widened), so both rows
	// answer the identical question.
	budgets := make([]vec.Costs, len(ds.Queries))
	for i, q := range ds.Queries {
		probe, err := core.Nearest(fs, q, 0, 6, core.Options{Engine: core.CEA})
		if err != nil {
			return nil, fmt.Errorf("budget probe: %w", err)
		}
		radius := 1.0
		if k := len(probe.Facilities); k > 0 {
			radius = probe.Facilities[k-1].Score * 1.25
		}
		b := make(vec.Costs, ds.Graph.D())
		for c := range b {
			b[c] = radius
		}
		budgets[i] = b
	}

	// The max point ranks by weighted Chebyshev with the same random
	// coefficients the dataset drew for its linear aggregates.
	maxAggs := make([]vec.Aggregate, len(ds.Aggs))
	for i, a := range ds.Aggs {
		maxAggs[i] = vec.NewMax(a.(vec.Weighted).Coef...)
	}

	rounds := pruneRounds
	if rounds*len(ds.Queries) < pruneMinJobs {
		rounds = (pruneMinJobs + len(ds.Queries) - 1) / len(ds.Queries)
	}
	kinds := []struct {
		param string
		req   func(qi int) engine.Request
	}{
		{"within", func(qi int) engine.Request {
			return engine.Request{Kind: engine.Within, Loc: ds.Queries[qi],
				Budget: budgets[qi], Opts: core.Options{Engine: core.CEA}}
		}},
		{fmt.Sprintf("topk/max/k=%d", w.K), func(qi int) engine.Request {
			return engine.Request{Kind: engine.TopK, Loc: ds.Queries[qi], Agg: maxAggs[qi],
				K: w.K, Opts: core.Options{Engine: core.CEA}}
		}},
		{fmt.Sprintf("topk/k=%d", w.K), func(qi int) engine.Request {
			return engine.Request{Kind: engine.TopK, Loc: ds.Queries[qi], Agg: ds.Aggs[qi],
				K: w.K, Opts: core.Options{Engine: core.CEA}}
		}},
	}

	var points []Point
	for _, kind := range kinds {
		reqs := make([]engine.Request, 0, rounds*len(ds.Queries))
		for r := 0; r < rounds; r++ {
			for qi := range ds.Queries {
				reqs = append(reqs, kind.req(qi))
			}
		}
		pt := Point{Param: density + "/" + kind.param}
		for _, algo := range []struct {
			name   string
			pruned bool
		}{
			{"unpruned", false},
			{"pruned", true},
		} {
			exec := engine.New(fs, engine.Config{Workers: pruneWorkers})
			if algo.pruned {
				exec.SetBounds(bounds)
			}
			// Warmup populates the executor's scratch pool; the work counters
			// are read as a delta past it so the reported per-query figures
			// cover exactly the measured jobs.
			for _, resp := range exec.Execute(context.Background(), reqs[:min(len(reqs), 2*pruneWorkers)]) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s warmup: %w", algo.name, resp.Err)
				}
			}
			warm := exec.Stats()
			jobs, results, wall, err := runStream(exec, reqs)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", algo.name, kind.param, err)
			}
			total := exec.Stats()
			n := float64(jobs)
			pt.Rows = append(pt.Rows, Row{
				Algo:       algo.name,
				QPS:        n / wall,
				SimSeconds: wall / n,
				ResultSize: float64(results) / n,
				Expanded:   float64(total.NodeExpansions-warm.NodeExpansions) / n,
				Pruned:     float64(total.PrunedNodes-warm.PrunedNodes) / n,
			})
		}
		points = append(points, pt)
	}
	return points, nil
}
