package bench

import "testing"

// The concurrency experiment must report a queries/sec figure for every
// worker count and identical per-query work regardless of parallelism (the
// executor changes scheduling, never answers).
func TestThroughputExperiment(t *testing.T) {
	points, err := runThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	rows := points[0].Rows
	if len(rows) != len(throughputWorkers) {
		t.Fatalf("rows = %d, want %d", len(rows), len(throughputWorkers))
	}
	for i, r := range rows {
		if r.QPS <= 0 {
			t.Errorf("workers=%d: QPS = %f, want > 0", throughputWorkers[i], r.QPS)
		}
		if r.ResultSize != rows[0].ResultSize {
			t.Errorf("workers=%d: result size %f differs from single-worker %f — parallelism changed answers",
				throughputWorkers[i], r.ResultSize, rows[0].ResultSize)
		}
		if r.LogicalIO != rows[0].LogicalIO {
			t.Errorf("workers=%d: logical I/O %f differs from single-worker %f",
				throughputWorkers[i], r.LogicalIO, rows[0].LogicalIO)
		}
	}
}

// The disk-throughput experiment must produce one point per worker count
// with a mutex row and a sharded row, identical answers from both pools, and
// no more physical I/O from the sharded pool than from the mutex one (miss
// coalescing can only remove device reads, never add them).
func TestDiskThroughputExperiment(t *testing.T) {
	fastDisk(t)
	points, err := runDiskThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(diskWorkers) {
		t.Fatalf("points = %d, want %d", len(points), len(diskWorkers))
	}
	for _, pt := range points {
		if len(pt.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", pt.Param, len(pt.Rows))
		}
		mutex, sharded := pt.Rows[0], pt.Rows[1]
		if mutex.Algo != "mutex" || sharded.Algo != "sharded" {
			t.Fatalf("%s: unexpected row labels %q, %q", pt.Param, mutex.Algo, sharded.Algo)
		}
		for _, r := range pt.Rows {
			if r.QPS <= 0 {
				t.Errorf("%s/%s: QPS = %f, want > 0", pt.Param, r.Algo, r.QPS)
			}
		}
		if mutex.ResultSize != sharded.ResultSize {
			t.Errorf("%s: result size %f (mutex) != %f (sharded) — pool choice changed answers",
				pt.Param, mutex.ResultSize, sharded.ResultSize)
		}
		// Coalescing can only remove device reads, but clock replacement may
		// miss where exact LRU hits (and vice versa), so allow the policies
		// to diverge — just not wildly — at this test's tiny pool capacity.
		if sharded.PhysIO > mutex.PhysIO*1.5 {
			t.Errorf("%s: sharded pool read far more pages (%.1f) than the mutex pool (%.1f)",
				pt.Param, sharded.PhysIO, mutex.PhysIO)
		}
	}
}
