package bench

import "testing"

// The concurrency experiment must report a queries/sec figure for every
// worker count and identical per-query work regardless of parallelism (the
// executor changes scheduling, never answers).
func TestThroughputExperiment(t *testing.T) {
	points, err := runThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	rows := points[0].Rows
	if len(rows) != len(throughputWorkers) {
		t.Fatalf("rows = %d, want %d", len(rows), len(throughputWorkers))
	}
	for i, r := range rows {
		if r.QPS <= 0 {
			t.Errorf("workers=%d: QPS = %f, want > 0", throughputWorkers[i], r.QPS)
		}
		if r.ResultSize != rows[0].ResultSize {
			t.Errorf("workers=%d: result size %f differs from single-worker %f — parallelism changed answers",
				throughputWorkers[i], r.ResultSize, rows[0].ResultSize)
		}
		if r.LogicalIO != rows[0].LogicalIO {
			t.Errorf("workers=%d: logical I/O %f differs from single-worker %f",
				throughputWorkers[i], r.LogicalIO, rows[0].LogicalIO)
		}
	}
}
