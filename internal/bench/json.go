package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// Report is the JSON-serialisable form of one benchmark session: the
// configuration, the machine it ran on, and every experiment's points.
// cmd/mcnbench -json writes one of these; committed baselines (e.g.
// BENCH_PR2.json) record the perf trajectory PR over PR.
type Report struct {
	Config  Config             `json:"config"`
	Host    Host               `json:"host"`
	Results []ExperimentResult `json:"results"`
}

// Host describes the machine a report was produced on, for honest
// comparisons between baselines.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// CurrentHost captures the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// ExperimentResult pairs an experiment with its measured points.
type ExperimentResult struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Points []Point `json:"points"`
}

// WriteJSON renders a report as indented JSON.
func WriteJSON(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
