package bench

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders an experiment's points as an aligned text table. A
// queries/sec column appears when any row carries a QPS measurement (the
// concurrency experiment); the simulated-time figures leave it out.
func WriteTable(w io.Writer, exp Experiment, points []Point) {
	hasQPS, hasExpanded, hasLatency := false, false, false
	for _, pt := range points {
		for _, r := range pt.Rows {
			if r.QPS != 0 {
				hasQPS = true
			}
			if r.Expanded != 0 {
				hasExpanded = true
			}
			if r.P99MS != 0 {
				hasLatency = true
			}
		}
	}
	fmt.Fprintf(w, "%s\n", exp.Title)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(exp.Title)))
	fmt.Fprintf(w, "%-18s %-10s %12s %12s %12s %10s %9s",
		"param", "algo", "sim sec/q", "phys IO/q", "logical/q", "cpu ms/q", "results")
	if hasQPS {
		fmt.Fprintf(w, " %10s", "queries/s")
	}
	if hasExpanded {
		fmt.Fprintf(w, " %10s", "expanded/q")
	}
	if hasLatency {
		fmt.Fprintf(w, " %9s %9s %9s", "p50 ms", "p99 ms", "p999 ms")
	}
	fmt.Fprintln(w)
	for _, pt := range points {
		for _, r := range pt.Rows {
			fmt.Fprintf(w, "%-18s %-10s %12.4f %12.1f %12.1f %10.3f %9.1f",
				pt.Param, r.Algo, r.SimSeconds, r.PhysIO, r.LogicalIO, r.CPUSeconds*1000, r.ResultSize)
			if hasQPS {
				fmt.Fprintf(w, " %10.1f", r.QPS)
			}
			if hasExpanded {
				fmt.Fprintf(w, " %10.1f", r.Expanded)
			}
			if hasLatency {
				fmt.Fprintf(w, " %9.3f %9.3f %9.3f", r.P50MS, r.P99MS, r.P999MS)
			}
			fmt.Fprintln(w)
		}
		if len(pt.Rows) == 2 {
			fmt.Fprintf(w, "%-18s %-10s %12.2fx\n", pt.Param, "ratio", pt.Ratio())
		}
	}
	fmt.Fprintln(w)
}

// WriteCSV renders points as CSV rows with an experiment-id column.
func WriteCSV(w io.Writer, exp Experiment, points []Point, header bool) {
	if header {
		fmt.Fprintln(w, "experiment,param,algo,sim_seconds,phys_io,logical_io,cpu_seconds,results,qps")
	}
	for _, pt := range points {
		for _, r := range pt.Rows {
			fmt.Fprintf(w, "%s,%s,%s,%.6f,%.2f,%.2f,%.6f,%.2f,%.2f\n",
				exp.ID, pt.Param, r.Algo, r.SimSeconds, r.PhysIO, r.LogicalIO, r.CPUSeconds, r.ResultSize, r.QPS)
		}
	}
}
