package bench

import (
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcn/internal/wire"
)

// Exact values in the linear region must round-trip through their bucket.
func TestHistLinearExact(t *testing.T) {
	var h Hist
	for us := 0; us < histSub; us++ {
		h.Record(time.Duration(us) * time.Microsecond)
	}
	if h.Count() != histSub {
		t.Fatalf("count = %d, want %d", h.Count(), histSub)
	}
	if got := h.Quantile(1); got != time.Duration(histSub-1)*time.Microsecond {
		t.Errorf("max quantile = %v, want %dµs", got, histSub-1)
	}
	if got := h.Quantile(1e-9); got != 0 {
		t.Errorf("min quantile = %v, want 0", got)
	}
}

// Bucket lower bounds must be monotonically non-decreasing and consistent
// with bucketIndex: every bucket's lower bound maps back to that bucket.
func TestHistBucketsConsistent(t *testing.T) {
	prev := time.Duration(-1)
	for i := 0; i < histBuckets; i++ {
		v := bucketValue(i)
		if v == math.MaxInt64 {
			// The top octaves saturate: no Duration-sized sample reaches them.
			if i < 1500 {
				t.Fatalf("bucket %d already saturated", i)
			}
			break
		}
		if v <= prev {
			t.Fatalf("bucket %d: lower bound %v not above previous %v", i, v, prev)
		}
		prev = v
		us := uint64(v / time.Microsecond)
		if got := bucketIndex(us); got != i {
			t.Fatalf("bucketIndex(bucketValue(%d)) = %d", i, got)
		}
	}
}

// Quantiles over random samples must stay within the histogram's designed
// relative error (1/histSub, plus the bucket-lower-bound bias).
func TestHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Hist
	samples := make([]time.Duration, 20_000)
	for i := range samples {
		// Log-uniform over 1µs .. ~16s to cross many octaves.
		us := math.Pow(2, rng.Float64()*24)
		samples[i] = time.Duration(us) * time.Microsecond
		h.Record(samples[i])
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		lo := float64(exact) * (1 - 2.0/histSub)
		hi := float64(exact) * (1 + 2.0/histSub)
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("q=%g: got %v, exact %v (allowed %v..%v)",
				q, got, exact, time.Duration(lo), time.Duration(hi))
		}
	}
}

// RunSoak against a stub endpoint: both codecs must send the declared
// Content-Type, complete requests, and report consistent counters.
func TestRunSoakStub(t *testing.T) {
	var json32, bin32 atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/query" || r.Method != http.MethodPost {
			http.Error(w, "wrong route", http.StatusNotFound)
			return
		}
		switch r.Header.Get("Content-Type") {
		case wire.ContentTypeJSON:
			json32.Add(1)
		case wire.ContentTypeBinary:
			bin32.Add(1)
		default:
			http.Error(w, "bad content type", http.StatusBadRequest)
			return
		}
		w.Write([]byte("{}")) //nolint:errcheck
	}))
	defer ts.Close()

	reqs := []*wire.Request{{Kind: wire.KindSkyline, Edge: 1, T: 0.5}}
	for _, binary := range []bool{false, true} {
		res, err := RunSoak(SoakConfig{
			BaseURL:  ts.URL,
			Binary:   binary,
			Clients:  2,
			Duration: 100 * time.Millisecond,
			Requests: reqs,
			Warmup:   true,
		})
		if err != nil {
			t.Fatalf("binary=%v: %v", binary, err)
		}
		if res.Completed == 0 || res.Errors != 0 {
			t.Fatalf("binary=%v: completed=%d errors=%d", binary, res.Completed, res.Errors)
		}
		if res.QPS <= 0 || res.Hist.Count() != res.Completed {
			t.Fatalf("binary=%v: qps=%v hist=%d completed=%d",
				binary, res.QPS, res.Hist.Count(), res.Completed)
		}
		if res.P50 < 0 || res.P99 < res.P50 || res.P999 < res.P99 {
			t.Fatalf("binary=%v: quantiles out of order %v %v %v",
				binary, res.P50, res.P99, res.P999)
		}
	}
	if json32.Load() == 0 || bin32.Load() == 0 {
		t.Fatalf("codec counts json=%d binary=%d", json32.Load(), bin32.Load())
	}
}

// An open-loop run must pace arrivals near the configured rate rather than
// saturating the server.
func TestRunSoakOpenLoopPacing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("{}")) //nolint:errcheck
	}))
	defer ts.Close()
	res, err := RunSoak(SoakConfig{
		BaseURL:  ts.URL,
		Clients:  4,
		Rate:     200,
		Duration: 500 * time.Millisecond,
		Requests: []*wire.Request{{Kind: wire.KindSkyline, Edge: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 req/s over 0.5s schedules ~100 arrivals; a closed loop against this
	// no-op server would run tens of thousands.
	if res.Completed < 50 || res.Completed > 150 {
		t.Fatalf("completed = %d, want ~100 (open-loop pacing)", res.Completed)
	}
}

// Server-side failures surface as an error carrying the failure count.
func TestRunSoakReportsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	res, err := RunSoak(SoakConfig{
		BaseURL:  ts.URL,
		Clients:  1,
		Duration: 50 * time.Millisecond,
		Requests: []*wire.Request{{Kind: wire.KindSkyline, Edge: 1}},
	})
	if err == nil {
		t.Fatal("want error from all-500 server")
	}
	if res == nil || res.Errors == 0 || res.Completed != 0 {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(err.Error(), "status 500") {
		t.Fatalf("err = %v", err)
	}
}
