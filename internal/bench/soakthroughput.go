package bench

import (
	"fmt"
	"net/http/httptest"
	"time"

	"mcn"
	"mcn/internal/graph"
	"mcn/internal/serve"
	"mcn/internal/wire"
)

// The soak-throughput experiment compares the two /v1/query codecs under
// sustained closed-loop load against one in-process mcnserve. The replica
// serves the in-memory network with the result cache on, so after warmup
// every request is a cache hit and the row measures the serving stack itself
// — HTTP handling, request decoding, response encoding — which is exactly
// where the binary codec earns its keep; binary rows must not fall below the
// JSON rows at equal client count. Latency quantiles come from the soak
// engine's histogram.
var (
	// soakClientCounts is the concurrency axis.
	soakClientCounts = []int{4, 16}
	// soakWindow is the measurement window per row.
	soakWindow = 2 * time.Second
	// soakServeWorkers pins the replica's executor parallelism.
	soakServeWorkers = 4
	// soakMinRequests pads the distinct request mix so the result cache holds
	// a realistic working set rather than three entries.
	soakMinRequests = 96
)

// SoakRequests builds the query mix: skyline, top-k and k-nearest over the
// workload's query locations. Skylines carry the biggest payloads, so codec
// cost is visible; the mix stays free of period/multisource kinds so the same
// stream also drives a bare single node without a time-dependent network.
func SoakRequests(locs []graph.Location, w Workload) []*wire.Request {
	reqs := make([]*wire.Request, 0, soakMinRequests)
	for r := 0; len(reqs) < soakMinRequests; r++ {
		for i, q := range locs {
			if len(reqs) >= soakMinRequests {
				break
			}
			edge, t := int(q.Edge), q.T
			switch (i + r) % 3 {
			case 0:
				reqs = append(reqs, &wire.Request{Kind: wire.KindSkyline, Edge: edge, T: t})
			case 1:
				reqs = append(reqs, &wire.Request{Kind: wire.KindTopK, Edge: edge, T: t, K: 2 + r%4})
			default:
				reqs = append(reqs, &wire.Request{Kind: wire.KindNearest, Edge: edge, T: t, Cost: i % w.D, K: 1 + r%4})
			}
		}
	}
	return reqs
}

// runSoakThroughput measures /v1/query queries/sec and latency quantiles for
// both codecs at each client count.
func runSoakThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	// The experiment measures the serving stack, not expansion cost: half the
	// default workload keeps the warmup pass (the only uncached execution)
	// cheap.
	w.Nodes /= 2
	w.Facilities /= 2
	mem, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}
	net := mcn.FromGraph(mem.Graph)
	net.EnableResultCache(mcn.CacheOptions{})
	srv := serve.New(net, serve.Config{Workers: soakServeWorkers, Timeout: time.Minute})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	reqs := SoakRequests(mem.Queries, w)
	var points []Point
	for _, nc := range soakClientCounts {
		pt := Point{Param: fmt.Sprintf("clients=%d", nc)}
		for _, binary := range []bool{false, true} {
			res, err := RunSoak(SoakConfig{
				BaseURL:  ts.URL,
				Binary:   binary,
				Clients:  nc,
				Duration: soakWindow,
				Requests: reqs,
				Warmup:   true,
			})
			if err != nil {
				return nil, fmt.Errorf("soakthroughput clients=%d binary=%v: %w", nc, binary, err)
			}
			algo := "json"
			if binary {
				algo = "binary"
			}
			pt.Rows = append(pt.Rows, SoakRow(algo, res))
		}
		points = append(points, pt)
	}
	return points, nil
}

// SoakRow converts one soak run into a bench row.
func SoakRow(algo string, res *SoakResult) Row {
	row := Row{
		Algo:   algo,
		QPS:    res.QPS,
		P50MS:  float64(res.P50) / float64(time.Millisecond),
		P99MS:  float64(res.P99) / float64(time.Millisecond),
		P999MS: float64(res.P999) / float64(time.Millisecond),
	}
	if res.Completed > 0 {
		row.SimSeconds = res.WallSeconds / float64(res.Completed)
	}
	return row
}
