// Package bench reproduces the paper's evaluation (Sec. VI): every figure is
// one Experiment that sweeps a parameter over the synthetic San-Francisco-
// profile workload, runs LSA and CEA over the disk-resident storage scheme,
// and reports per-query physical page I/O, CPU time and simulated total time
// (physical reads × a configurable device latency + CPU).
//
// The paper's processing time is vastly I/O-dominated (its footnote 7: CPU
// is 5 % of LSA's and 16 % of CEA's total), so the physical page count
// behind an identical LRU buffer is the faithful basis of comparison; the
// latency multiplier only sets the scale of the reported seconds.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"mcn/internal/core"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/storage"
	"mcn/internal/vec"
)

// Config tunes the experiment suite.
type Config struct {
	// Scale multiplies the paper's node and facility counts (1.0 = 175K
	// nodes; the default 0.25 keeps the full suite to minutes).
	Scale float64
	// Queries is the number of query locations per data point (paper: 100).
	Queries int
	// LatencyMS is the simulated latency per physical page read in
	// milliseconds (default 8, a 2010-era random disk read).
	LatencyMS float64
	Seed      int64
}

func (c *Config) defaults() {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.LatencyMS == 0 {
		c.LatencyMS = 8
	}
}

// Row is one algorithm's measurement at one parameter value, averaged per
// query.
type Row struct {
	Algo       string  `json:"algo"`
	SimSeconds float64 `json:"sim_seconds"`
	CPUSeconds float64 `json:"cpu_seconds"`
	PhysIO     float64 `json:"phys_io"`
	LogicalIO  float64 `json:"logical_io"`
	ResultSize float64 `json:"result_size"`
	// QPS is measured wall-clock queries/sec; only the concurrency
	// experiments fill it (the paper's figures are simulated-time).
	QPS float64 `json:"qps,omitempty"`
	// P50MS/P99MS/P999MS are request-latency quantiles in milliseconds from
	// the soak engine's histogram; only the soak experiment fills them.
	P50MS  float64 `json:"p50_ms,omitempty"`
	P99MS  float64 `json:"p99_ms,omitempty"`
	P999MS float64 `json:"p999_ms,omitempty"`
	// IORetries is the buffer pool's transient-read retries per query; only
	// the fault-injection experiment fills it.
	IORetries float64 `json:"io_retries,omitempty"`
	// Expanded is the average number of nodes the expansion settled per
	// query; only the pruning experiment fills it. For a fixed seed the
	// count is fully deterministic (no hardware or load dependence), so the
	// regression gate holds it to the tight physical-I/O tolerance.
	Expanded float64 `json:"expanded_nodes,omitempty"`
	// Pruned is the average number of nodes the lower-bound index cut per
	// query (informational; the gate watches Expanded).
	Pruned float64 `json:"pruned_nodes,omitempty"`
}

// Point is one x-axis value of a figure with the rows of all algorithms.
type Point struct {
	Param string `json:"param"`
	Rows  []Row  `json:"rows"`
}

// Ratio returns row0.SimSeconds / row1.SimSeconds (LSA/CEA speedup).
func (p Point) Ratio() float64 {
	if len(p.Rows) < 2 || p.Rows[1].SimSeconds == 0 {
		return 0
	}
	return p.Rows[0].SimSeconds / p.Rows[1].SimSeconds
}

// Experiment regenerates one figure of the paper.
type Experiment struct {
	ID    string // e.g. "fig8a"
	Title string // e.g. "Fig. 8(a): skyline time vs |P|"
	Run   func(cfg Config) ([]Point, error)
}

// Paper defaults (Sec. VI).
const (
	paperNodes      = 175_000
	paperFacilities = 100_000
	defaultClusters = 10
	defaultD        = 4
	defaultBuffer   = 0.01
	defaultK        = 4
)

// Workload describes one data point's dataset and query setup.
type Workload struct {
	Nodes      int
	Facilities int
	D          int
	Dist       gen.Distribution
	Buffer     float64
	K          int
	Seed       int64
	Queries    int
}

// DefaultWorkload returns the paper's default setting scaled by c.Scale.
func (c Config) DefaultWorkload() Workload {
	return Workload{
		Nodes:      int(float64(paperNodes) * c.Scale),
		Facilities: int(float64(paperFacilities) * c.Scale),
		D:          defaultD,
		Dist:       gen.AntiCorrelated,
		Buffer:     defaultBuffer,
		K:          defaultK,
		Seed:       c.Seed,
		Queries:    c.Queries,
	}
}

// Dataset is a built disk-resident instance: the database image, the query
// locations, and one aggregate function per query.
type Dataset struct {
	Dev     *storage.MemDevice
	Queries []graph.Location
	Aggs    []vec.Aggregate
}

// MemDataset is the in-memory counterpart of Dataset: the graph itself plus
// the same query locations and aggregates, for experiments that measure the
// in-memory fast path rather than the paper's disk scheme.
type MemDataset struct {
	Graph   *graph.Graph
	Queries []graph.Location
	Aggs    []vec.Aggregate
}

// BuildMemDataset constructs the in-memory workload for w: synthetic road
// network, clustered facilities, query locations and per-query aggregate
// functions with random coefficients in [0, 1] (paper Sec. VI).
func BuildMemDataset(w Workload) (*MemDataset, error) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes:      w.Nodes,
		Facilities: w.Facilities,
		Clusters:   defaultClusters,
		D:          w.D,
		Dist:       w.Dist,
		Seed:       w.Seed,
		Queries:    w.Queries,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(w.Seed + 17))
	aggs := make([]vec.Aggregate, len(inst.Queries))
	for i := range aggs {
		coef := make([]float64, w.D)
		for j := range coef {
			coef[j] = rng.Float64()
		}
		aggs[i] = vec.NewWeighted(coef...)
	}
	return &MemDataset{Graph: inst.Graph, Queries: inst.Queries, Aggs: aggs}, nil
}

// BuildDataset is BuildMemDataset plus the disk image of the paper's storage
// scheme.
func BuildDataset(w Workload) (*Dataset, error) {
	mem, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}
	dev, err := storage.BuildMem(mem.Graph)
	if err != nil {
		return nil, err
	}
	return &Dataset{Dev: dev, Queries: mem.Queries, Aggs: mem.Aggs}, nil
}

// queryKind selects the query type an experiment measures.
type queryKind int

const (
	skylineQuery queryKind = iota
	topkQuery
)

// paperPool is the buffer configuration of the paper-reproduction
// experiments: one shard of exact LRU, matching the single LRU buffer the
// paper's evaluation models. The sharded clock default would shift the
// physical-read counts the figures are built on (clock approximates LRU,
// and shard capacities split differently), so reproductions pin it.
var paperPool = storage.PoolOptions{Shards: 1, Policy: storage.PolicyLRU}

// measure runs all queries of ds with one engine over a fresh buffer pool
// and returns the averaged row. The pool persists across the queries (warm
// LRU), as a long-running server would behave.
func measure(ds *Dataset, kind queryKind, engine core.Engine, w Workload, latencyMS float64) (Row, error) {
	return measureOpts(ds, kind, engine.String(), core.Options{Engine: engine}, w, latencyMS)
}

// measureOpts is measure with full control over query options.
func measureOpts(ds *Dataset, kind queryKind, name string, opts core.Options, w Workload, latencyMS float64) (Row, error) {
	net, err := storage.OpenOptions(ds.Dev, w.Buffer, paperPool)
	if err != nil {
		return Row{}, err
	}
	var results int
	start := time.Now()
	for i, q := range ds.Queries {
		switch kind {
		case skylineQuery:
			res, err := core.Skyline(net, q, opts)
			if err != nil {
				return Row{}, err
			}
			results += len(res.Facilities)
		case topkQuery:
			res, err := core.TopK(net, q, ds.Aggs[i], w.K, opts)
			if err != nil {
				return Row{}, err
			}
			results += len(res.Facilities)
		}
	}
	cpu := time.Since(start).Seconds()
	stats := net.Stats()
	n := float64(len(ds.Queries))
	row := Row{
		Algo:       name,
		CPUSeconds: cpu / n,
		PhysIO:     float64(stats.Physical) / n,
		LogicalIO:  float64(stats.Logical) / n,
		ResultSize: float64(results) / n,
	}
	row.SimSeconds = row.PhysIO*latencyMS/1000 + row.CPUSeconds
	return row, nil
}

// runPoint builds w's dataset and measures LSA and CEA on it.
func runPoint(param string, w Workload, kind queryKind, latencyMS float64) (Point, error) {
	ds, err := BuildDataset(w)
	if err != nil {
		return Point{}, err
	}
	pt := Point{Param: param}
	for _, engine := range []core.Engine{core.LSA, core.CEA} {
		row, err := measure(ds, kind, engine, w, latencyMS)
		if err != nil {
			return Point{}, err
		}
		pt.Rows = append(pt.Rows, row)
	}
	return pt, nil
}

// sweep applies each variation to the default workload and gathers points.
func sweep(cfg Config, kind queryKind, params []string, vary func(*Workload, int)) ([]Point, error) {
	cfg.defaults()
	var out []Point
	for i, param := range params {
		w := cfg.DefaultWorkload()
		vary(&w, i)
		pt, err := runPoint(param, w, kind, cfg.LatencyMS)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", param, err)
		}
		out = append(out, pt)
	}
	return out, nil
}
