package vec

import (
	"fmt"
	"math"
)

// Aggregate is an increasingly monotone scoring function over complete cost
// vectors: if c weakly dominates o then Score(c) <= Score(o). Top-k queries
// minimise the aggregate score.
type Aggregate interface {
	// Score maps a complete cost vector to its aggregate cost.
	Score(Costs) float64
	// Dims returns the number of cost types the function expects.
	Dims() int
}

// ComponentScorer is implemented by aggregates that can bound their score
// from below through a single component: for every complete cost vector c,
// Score(c) >= ComponentScore(i, c[i]) must hold for every i. The top-k
// driver uses it to turn a per-criterion distance lower bound into an
// aggregate-score lower bound for expansion pruning; aggregates without it
// (e.g. an arbitrary Func) simply run unpruned.
type ComponentScorer interface {
	// ComponentScore returns a lower bound on the score of any vector whose
	// i-th component is at least x.
	ComponentScore(i int, x float64) float64
}

// Weighted is the linear aggregate f(p) = Σ αᵢ·cᵢ(p) used throughout the
// paper's evaluation (Sec. VI, coefficients αᵢ ∈ [0, 1]).
type Weighted struct {
	Coef []float64
}

// NewWeighted returns a linear aggregate with the given non-negative
// coefficients. It panics if any coefficient is negative, since that would
// break monotonicity.
func NewWeighted(coef ...float64) Weighted {
	for i, a := range coef {
		if a < 0 || math.IsNaN(a) {
			panic(fmt.Sprintf("vec: weighted aggregate coefficient %d is %g; must be non-negative", i, a))
		}
	}
	return Weighted{Coef: coef}
}

// Score implements Aggregate.
func (w Weighted) Score(c Costs) float64 {
	s := 0.0
	for i, a := range w.Coef {
		if a == 0 {
			continue // avoid 0·(+Inf) = NaN for unreachable components
		}
		s += a * c[i]
	}
	return s
}

// Dims implements Aggregate.
func (w Weighted) Dims() int { return len(w.Coef) }

// ComponentScore implements ComponentScorer: the i-th term alone, valid as a
// lower bound because every other term is non-negative.
func (w Weighted) ComponentScore(i int, x float64) float64 {
	if w.Coef[i] == 0 {
		return 0 // avoid 0·(+Inf) = NaN; a zero-weight component bounds nothing
	}
	return w.Coef[i] * x
}

// MaxAgg is the increasingly monotone aggregate f(p) = max_i αᵢ·cᵢ(p)
// (weighted Chebyshev). It is useful when the worst criterion should drive
// the ranking, e.g. "the slowest commuter group determines suitability".
type MaxAgg struct {
	Coef []float64
}

// NewMax returns a weighted-maximum aggregate. Coefficients must be
// non-negative.
func NewMax(coef ...float64) MaxAgg {
	for i, a := range coef {
		if a < 0 || math.IsNaN(a) {
			panic(fmt.Sprintf("vec: max aggregate coefficient %d is %g; must be non-negative", i, a))
		}
	}
	return MaxAgg{Coef: coef}
}

// Score implements Aggregate.
func (m MaxAgg) Score(c Costs) float64 {
	s := 0.0
	for i, a := range m.Coef {
		if a == 0 {
			continue // avoid 0·(+Inf) = NaN for unreachable components
		}
		if v := a * c[i]; v > s {
			s = v
		}
	}
	return s
}

// Dims implements Aggregate.
func (m MaxAgg) Dims() int { return len(m.Coef) }

// ComponentScore implements ComponentScorer: the maximum is at least its
// i-th term.
func (m MaxAgg) ComponentScore(i int, x float64) float64 {
	if m.Coef[i] == 0 {
		return 0
	}
	return m.Coef[i] * x
}

// Func adapts a plain function to the Aggregate interface. The caller is
// responsible for the function being increasingly monotone.
type Func struct {
	D int
	F func(Costs) float64
}

// Score implements Aggregate.
func (f Func) Score(c Costs) float64 { return f.F(c) }

// Dims implements Aggregate.
func (f Func) Dims() int { return f.D }
