// Package vec provides cost vectors and dominance tests for multi-cost
// networks. A cost vector holds one value per cost type; smaller is always
// better. Unknown components are represented by NaN and positive infinity
// marks unreachable components.
package vec

import (
	"fmt"
	"math"
	"strings"
)

// Costs is a vector of d cost values, one per cost type. All operations treat
// smaller values as preferable.
type Costs []float64

// Unknown is the sentinel used for cost components that have not been
// computed yet (e.g. a candidate facility not yet popped by an expansion).
func Unknown() float64 { return math.NaN() }

// IsUnknown reports whether v is the unknown sentinel.
func IsUnknown(v float64) bool { return math.IsNaN(v) }

// New returns a length-d vector with every component unknown.
func New(d int) Costs {
	c := make(Costs, d)
	for i := range c {
		c[i] = math.NaN()
	}
	return c
}

// Of builds a cost vector from the given values.
func Of(vals ...float64) Costs { return Costs(vals) }

// Clone returns an independent copy of c.
func (c Costs) Clone() Costs {
	out := make(Costs, len(c))
	copy(out, c)
	return out
}

// Complete reports whether every component of c is known.
func (c Costs) Complete() bool {
	for _, v := range c {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}

// KnownCount returns the number of known components.
func (c Costs) KnownCount() int {
	n := 0
	for _, v := range c {
		if !math.IsNaN(v) {
			n++
		}
	}
	return n
}

// Dominates reports whether c dominates o: every component of c is no larger
// than the corresponding component of o, and at least one is strictly
// smaller. Both vectors must be complete and of equal length; the caller is
// expected to guarantee this.
func (c Costs) Dominates(o Costs) bool {
	strict := false
	for i, v := range c {
		if v > o[i] {
			return false
		}
		if v < o[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether every component of c is no larger than the
// corresponding component of o (equality everywhere counts).
func (c Costs) WeaklyDominates(o Costs) bool {
	for i, v := range c {
		if v > o[i] {
			return false
		}
	}
	return true
}

// Equal reports component-wise equality. Unknown components compare equal to
// unknown components only.
func (c Costs) Equal(o Costs) bool {
	if len(c) != len(o) {
		return false
	}
	for i, v := range c {
		switch {
		case math.IsNaN(v) && math.IsNaN(o[i]):
		case v == o[i]:
		default:
			return false
		}
	}
	return true
}

// DominatesKnown reports whether complete vector c dominates partially known
// vector o, using only o's known components for the comparison and requiring
// a strict improvement on at least one of them. This is the safe elimination
// test of LSA's shrinking stage: o's unknown components are guaranteed (by
// the incremental expansion order) to be no smaller than c's corresponding
// components, so weak dominance on the known components plus one strict win
// implies full dominance.
func (c Costs) DominatesKnown(o Costs) bool {
	strict := false
	for i, v := range o {
		if math.IsNaN(v) {
			continue
		}
		if c[i] > v {
			return false
		}
		if c[i] < v {
			strict = true
		}
	}
	return strict
}

// FillUnknown returns a copy of c where every unknown component i is replaced
// by floor[i]. Used to compute aggregate-cost lower bounds from expansion
// frontiers.
func (c Costs) FillUnknown(floor Costs) Costs {
	out := c.Clone()
	for i, v := range out {
		if math.IsNaN(v) {
			out[i] = floor[i]
		}
	}
	return out
}

// Add returns c + o component-wise.
func (c Costs) Add(o Costs) Costs {
	out := make(Costs, len(c))
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// Scale returns c scaled by the factor s.
func (c Costs) Scale(s float64) Costs {
	out := make(Costs, len(c))
	for i := range c {
		out[i] = c[i] * s
	}
	return out
}

// Min returns the component-wise minimum of c and o.
func Min(c, o Costs) Costs {
	out := make(Costs, len(c))
	for i := range c {
		out[i] = math.Min(c[i], o[i])
	}
	return out
}

// String formats the vector with unknown components rendered as "?".
func (c Costs) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range c {
		if i > 0 {
			b.WriteString(", ")
		}
		if math.IsNaN(v) {
			b.WriteByte('?')
		} else {
			fmt.Fprintf(&b, "%g", v)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Validate returns an error if any known component is negative. MCN edge
// costs are non-negative by definition (paper Sec. III).
func (c Costs) Validate() error {
	for i, v := range c {
		if !math.IsNaN(v) && v < 0 {
			return fmt.Errorf("cost %d is negative (%g)", i, v)
		}
	}
	return nil
}
