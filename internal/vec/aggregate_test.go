package vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeightedScore(t *testing.T) {
	f := NewWeighted(0.9, 0.1)
	got := f.Score(Of(10, 1))
	want := 0.9*10 + 0.1*1
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Score = %g, want %g", got, want)
	}
	if f.Dims() != 2 {
		t.Errorf("Dims = %d, want 2", f.Dims())
	}
}

func TestWeightedRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWeighted must panic on negative coefficient")
		}
	}()
	NewWeighted(0.5, -0.1)
}

func TestMaxAggScore(t *testing.T) {
	f := NewMax(1, 2)
	if got := f.Score(Of(10, 3)); got != 10 {
		t.Errorf("Score = %g, want 10", got)
	}
	if got := f.Score(Of(1, 30)); got != 60 {
		t.Errorf("Score = %g, want 60", got)
	}
}

func TestMaxRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMax must panic on negative coefficient")
		}
	}()
	NewMax(-1)
}

func TestFuncAdapter(t *testing.T) {
	f := Func{D: 2, F: func(c Costs) float64 { return c[0] + c[1]*c[1] }}
	if got := f.Score(Of(1, 3)); got != 10 {
		t.Errorf("Score = %g, want 10", got)
	}
	if f.Dims() != 2 {
		t.Errorf("Dims = %d", f.Dims())
	}
}

// Monotonicity: if a weakly dominates b then Score(a) <= Score(b), for both
// built-in aggregates, on random vectors.
func TestAggregateMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		d := 1 + rng.Intn(5)
		coef := make([]float64, d)
		for i := range coef {
			coef[i] = rng.Float64()
		}
		aggs := []Aggregate{NewWeighted(coef...), NewMax(coef...)}

		a, b := make(Costs, d), make(Costs, d)
		for i := 0; i < d; i++ {
			a[i] = rng.Float64() * 10
			b[i] = a[i] + rng.Float64()*5 // b is weakly dominated by a
		}
		for _, f := range aggs {
			if f.Score(a) > f.Score(b)+1e-9 {
				t.Fatalf("monotonicity violated: f(%v)=%g > f(%v)=%g", a, f.Score(a), b, f.Score(b))
			}
		}
	}
}
