package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	tests := []struct {
		name string
		a, b Costs
		want bool
	}{
		{"strictly smaller everywhere", Of(1, 2), Of(2, 3), true},
		{"smaller in one, equal other", Of(1, 3), Of(2, 3), true},
		{"equal vectors", Of(1, 2), Of(1, 2), false},
		{"incomparable", Of(1, 5), Of(2, 3), false},
		{"strictly larger", Of(3, 4), Of(1, 2), false},
		{"single dim smaller", Of(1), Of(2), true},
		{"single dim equal", Of(2), Of(2), false},
		{"zero costs", Of(0, 0), Of(0, 1), true},
		{"inf dominated by finite", Of(1, 1), Of(1, math.Inf(1)), true},
		{"inf vs inf equal", Of(math.Inf(1), 1), Of(math.Inf(1), 1), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Dominates(tc.b); got != tc.want {
				t.Errorf("%v.Dominates(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestWeaklyDominates(t *testing.T) {
	if !Of(1, 2).WeaklyDominates(Of(1, 2)) {
		t.Error("equal vectors must weakly dominate each other")
	}
	if Of(1, 3).WeaklyDominates(Of(1, 2)) {
		t.Error("larger component must break weak dominance")
	}
	if !Of(0, 0).WeaklyDominates(Of(5, 5)) {
		t.Error("smaller everywhere must weakly dominate")
	}
}

func TestDominanceIrreflexive(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		c := Costs(raw)
		for i := range c {
			c[i] = math.Abs(c[i])
		}
		return !c.Dominates(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDominanceAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		d := 1 + rng.Intn(5)
		a, b := make(Costs, d), make(Costs, d)
		for i := 0; i < d; i++ {
			a[i] = float64(rng.Intn(4))
			b[i] = float64(rng.Intn(4))
		}
		if a.Dominates(b) && b.Dominates(a) {
			t.Fatalf("both %v and %v dominate each other", a, b)
		}
	}
}

func TestDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5000; trial++ {
		d := 1 + rng.Intn(4)
		a, b, c := make(Costs, d), make(Costs, d), make(Costs, d)
		for i := 0; i < d; i++ {
			a[i], b[i], c[i] = float64(rng.Intn(3)), float64(rng.Intn(3)), float64(rng.Intn(3))
		}
		if a.Dominates(b) && b.Dominates(c) && !a.Dominates(c) {
			t.Fatalf("transitivity violated: %v > %v > %v but not %v > %v", a, b, c, a, c)
		}
	}
}

func TestDominatesKnown(t *testing.T) {
	full := Of(2, 3, 4)

	partial := Of(5, Unknown(), Unknown())
	if !full.DominatesKnown(partial) {
		t.Error("full vector should dominate partial with larger known cost")
	}

	tied := Of(2, Unknown(), Unknown())
	if full.DominatesKnown(tied) {
		t.Error("all-known-equal must NOT be eliminated (tie-robustness)")
	}

	better := Of(1, Unknown(), Unknown())
	if full.DominatesKnown(better) {
		t.Error("partial with smaller known cost cannot be dominated on knowns")
	}

	mixed := Of(2, 9, Unknown())
	if !full.DominatesKnown(mixed) {
		t.Error("equal first + worse second known should be dominated")
	}
}

func TestUnknownHandling(t *testing.T) {
	c := New(3)
	if c.Complete() {
		t.Error("fresh vector must not be complete")
	}
	if got := c.KnownCount(); got != 0 {
		t.Errorf("KnownCount = %d, want 0", got)
	}
	c[1] = 7
	if got := c.KnownCount(); got != 1 {
		t.Errorf("KnownCount = %d, want 1", got)
	}
	if c.Complete() {
		t.Error("vector with unknowns must not be complete")
	}
	c[0], c[2] = 1, 2
	if !c.Complete() {
		t.Error("fully assigned vector must be complete")
	}
}

func TestFillUnknown(t *testing.T) {
	c := Of(1, Unknown(), 3)
	floor := Of(10, 20, 30)
	got := c.FillUnknown(floor)
	want := Of(1, 20, 3)
	if !got.Equal(want) {
		t.Errorf("FillUnknown = %v, want %v", got, want)
	}
	// Original must be untouched.
	if !IsUnknown(c[1]) {
		t.Error("FillUnknown mutated its receiver")
	}
}

func TestEqual(t *testing.T) {
	if !Of(1, Unknown()).Equal(Of(1, Unknown())) {
		t.Error("unknown components should compare equal")
	}
	if Of(1, 2).Equal(Of(1, 2, 3)) {
		t.Error("different lengths must not be equal")
	}
	if Of(1, 2).Equal(Of(1, 3)) {
		t.Error("different values must not be equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Of(1, 2, 3)
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestString(t *testing.T) {
	got := Of(1, Unknown(), 2.5).String()
	want := "(1, ?, 2.5)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := Of(0, 1, 2).Validate(); err != nil {
		t.Errorf("non-negative vector should validate, got %v", err)
	}
	if err := Of(0, -1).Validate(); err == nil {
		t.Error("negative cost must fail validation")
	}
	if err := Of(Unknown(), 1).Validate(); err != nil {
		t.Errorf("unknown components are allowed, got %v", err)
	}
}

func TestMinAddScale(t *testing.T) {
	a, b := Of(1, 5), Of(2, 3)
	if got := Min(a, b); !got.Equal(Of(1, 3)) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Add(b); !got.Equal(Of(3, 8)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(2); !got.Equal(Of(2, 10)) {
		t.Errorf("Scale = %v", got)
	}
}
