// Package skyline implements conventional skyline computation over
// materialised cost vectors: block-nested-loops (BNL) and sort-filter
// skyline (SFS), per Börzsönyi et al. and Chomicki et al. The paper's
// baseline MCN method materialises all facility cost vectors with d complete
// network expansions and then runs one of these operators.
package skyline

import (
	"sort"

	"mcn/internal/vec"
)

// BNL returns the indices of the skyline tuples of items (all vectors must
// be complete and share one dimensionality) using the block-nested-loops
// strategy with an in-memory window.
func BNL(items []vec.Costs) []int {
	var window []int
	for i, c := range items {
		dominated := false
		for _, j := range window {
			if items[j].Dominates(c) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		keep := window[:0]
		for _, j := range window {
			if !c.Dominates(items[j]) {
				keep = append(keep, j)
			}
		}
		window = append(keep, i)
	}
	sort.Ints(window)
	return window
}

// SFS returns the skyline indices using sort-filter skyline: tuples are
// processed in ascending order of a monotone topological score (the
// component sum), after which a tuple can only be dominated by tuples
// already in the window.
func SFS(items []vec.Costs) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sum := make([]float64, len(items))
	for i, c := range items {
		for _, v := range c {
			sum[i] += v
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if sum[order[a]] != sum[order[b]] {
			return sum[order[a]] < sum[order[b]]
		}
		return order[a] < order[b]
	})
	var out []int
	for _, i := range order {
		dominated := false
		for _, j := range out {
			if items[j].Dominates(items[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
