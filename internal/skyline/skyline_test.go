package skyline

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mcn/internal/vec"
)

// naive is the O(n²) reference skyline.
func naive(items []vec.Costs) []int {
	var out []int
	for i := range items {
		dominated := false
		for j := range items {
			if j != i && items[j].Dominates(items[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

func TestSkylineFixed(t *testing.T) {
	items := []vec.Costs{
		vec.Of(1, 5), // skyline
		vec.Of(2, 4), // skyline
		vec.Of(3, 4), // dominated by (2,4)
		vec.Of(5, 1), // skyline
		vec.Of(5, 5), // dominated
		vec.Of(1, 5), // duplicate of 0: both stay (neither dominates)
	}
	want := []int{0, 1, 3, 5}
	if got := BNL(items); !reflect.DeepEqual(got, want) {
		t.Errorf("BNL = %v, want %v", got, want)
	}
	if got := SFS(items); !reflect.DeepEqual(got, want) {
		t.Errorf("SFS = %v, want %v", got, want)
	}
}

func TestSkylineEmptyAndSingle(t *testing.T) {
	if got := BNL(nil); len(got) != 0 {
		t.Errorf("BNL(nil) = %v", got)
	}
	if got := SFS(nil); len(got) != 0 {
		t.Errorf("SFS(nil) = %v", got)
	}
	one := []vec.Costs{vec.Of(3, 3)}
	if got := BNL(one); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("BNL(single) = %v", got)
	}
}

func TestSkylineAllEqual(t *testing.T) {
	items := []vec.Costs{vec.Of(2, 2), vec.Of(2, 2), vec.Of(2, 2)}
	want := []int{0, 1, 2}
	if got := BNL(items); !reflect.DeepEqual(got, want) {
		t.Errorf("BNL = %v, want %v", got, want)
	}
	if got := SFS(items); !reflect.DeepEqual(got, want) {
		t.Errorf("SFS = %v, want %v", got, want)
	}
}

func TestSkylineWithInfinities(t *testing.T) {
	inf := math.Inf(1)
	items := []vec.Costs{
		vec.Of(1, inf),
		vec.Of(2, 3),
		vec.Of(inf, inf),
		vec.Of(inf, 2),
	}
	// (1,inf) and (2,3) are skyline; (inf,inf) is dominated by (2,3);
	// (inf,2) is skyline (best second dim).
	want := []int{0, 1, 3}
	if got := BNL(items); !reflect.DeepEqual(got, want) {
		t.Errorf("BNL = %v, want %v", got, want)
	}
	if got := SFS(items); !reflect.DeepEqual(got, want) {
		t.Errorf("SFS = %v, want %v", got, want)
	}
}

// Both operators must agree with the naive reference on random inputs,
// including tie-heavy integer inputs.
func TestSkylineMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(4)
		n := rng.Intn(120)
		items := make([]vec.Costs, n)
		for i := range items {
			c := make(vec.Costs, d)
			for j := range c {
				if trial%2 == 0 {
					c[j] = float64(rng.Intn(6)) // ties
				} else {
					c[j] = rng.Float64() * 100
				}
			}
			items[i] = c
		}
		want := naive(items)
		if want == nil {
			want = []int{}
		}
		got := BNL(items)
		if got == nil {
			got = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: BNL = %v, want %v (items %v)", trial, got, want, items)
		}
		got = SFS(items)
		if got == nil {
			got = []int{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: SFS = %v, want %v (items %v)", trial, got, want, items)
		}
	}
}
