package expand

import "testing"

func TestNilPoolHandsOutNilScratch(t *testing.T) {
	var p *Pool
	if sc := p.Get(); sc != nil {
		t.Fatalf("nil pool Get = %v, want nil", sc)
	}
	p.Put(nil) // must not panic
}

func TestNewPoolRequiresSizedSource(t *testing.T) {
	// A bare Source without NumNodes/NumFacilities cannot back dense state.
	var src Source = sourceOnly{}
	if p := NewPool(src); p != nil {
		t.Fatal("NewPool accepted an unsized source")
	}
}

// sourceOnly implements Source but not Sized.
type sourceOnly struct{ Source }

func (sourceOnly) D() int { return 1 }

func TestScratchStateReuse(t *testing.T) {
	sc := NewScratch(4, 0, 2)
	a := sc.state()
	b := sc.state()
	if a == b {
		t.Fatal("scratch handed out the same state twice without Reset")
	}
	genA := a.gen
	sc.Reset()
	if got := sc.state(); got != a {
		t.Fatal("Reset did not recycle the first state")
	} else if got.gen == genA {
		t.Fatal("recycled state kept its old generation")
	}
}

// TestGenerationWrapClears forces the uint32 generation counter to wrap and
// checks the stamp arrays are really cleared: a stale stamp equal to the
// post-wrap generation must not read as "seen".
func TestGenerationWrapClears(t *testing.T) {
	ds := newDenseState(3, 3)
	ds.gen = ^uint32(0) - 1
	ds.bump() // → MaxUint32
	ds.nodeSeen[1] = ds.gen
	ds.nodeDone[2] = ds.gen
	ds.facSeen[0] = ds.gen
	ds.facDone[1] = ds.gen
	ds.bump() // wraps: must clear and restart at 1
	if ds.gen != 1 {
		t.Fatalf("post-wrap gen = %d, want 1", ds.gen)
	}
	for i := 0; i < 3; i++ {
		if ds.nodeSeen[i] == ds.gen || ds.nodeDone[i] == ds.gen ||
			ds.facSeen[i] == ds.gen || ds.facDone[i] == ds.gen {
			t.Fatalf("stale stamp at %d reads as current after wrap", i)
		}
	}
}

// TestEdgeSet exercises the dense epoch-stamped edge set: membership,
// O(1) clearing via generation bump, nil-capacity fallback and stamp
// wrap-around.
func TestEdgeSet(t *testing.T) {
	sc := NewScratch(4, 6, 2)
	es := sc.EdgeSet()
	if es == nil {
		t.Fatal("scratch with edge capacity returned nil EdgeSet")
	}
	es.Add(0)
	es.Add(5)
	if !es.Has(0) || !es.Has(5) || es.Has(3) {
		t.Fatal("membership wrong after Add")
	}
	// Re-acquiring the set clears it without touching the array.
	es2 := sc.EdgeSet()
	if es2 != es {
		t.Fatal("EdgeSet reallocated on reuse")
	}
	if es2.Has(0) || es2.Has(5) {
		t.Fatal("stale membership survived EdgeSet reacquisition")
	}

	// No edge capacity → nil (callers fall back to a map).
	if es := NewScratch(4, 0, 2).EdgeSet(); es != nil {
		t.Fatalf("edgeless scratch returned %v, want nil", es)
	}
	var nilScratch *Scratch
	if es := nilScratch.EdgeSet(); es != nil {
		t.Fatal("nil scratch must return a nil EdgeSet")
	}

	// Wrap-around: a stale stamp equal to the post-wrap generation must not
	// read as present.
	es.gen = ^uint32(0)
	es.Add(2)
	es.reset() // wraps to 1 and clears
	if es.gen != 1 {
		t.Fatalf("post-wrap gen = %d, want 1", es.gen)
	}
	if es.Has(2) {
		t.Fatal("stale membership reads as present after wrap")
	}
}
