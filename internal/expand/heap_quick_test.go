package expand

import (
	"sort"
	"testing"
	"testing/quick"
)

// quick.Check: pushing arbitrary items and draining the heap yields exactly
// the input multiset in the canonical (key, kind, id) order.
func TestHeapQuickSortedDrain(t *testing.T) {
	type rawItem struct {
		Key  float64
		Kind bool
		ID   uint32
	}
	f := func(raw []rawItem) bool {
		var h minHeap
		items := make([]item, len(raw))
		for i, r := range raw {
			k := r.Key
			if k != k { // NaN keys never occur in expansions; normalise
				k = 0
			}
			kind := kindNode
			if r.Kind {
				kind = kindFacility
			}
			items[i] = item{key: k, kind: kind, id: r.ID}
			h.push(items[i])
		}
		sorted := append([]item(nil), items...)
		sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].less(sorted[b]) })
		for _, want := range sorted {
			got, ok := h.pop()
			if !ok || got != want {
				return false
			}
		}
		_, ok := h.pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// quick.Check: peek always agrees with the next pop.
func TestHeapQuickPeekConsistent(t *testing.T) {
	f := func(keys []float64) bool {
		var h minHeap
		for i, k := range keys {
			if k != k {
				k = 0
			}
			h.push(item{key: k, kind: kindNode, id: uint32(i)})
		}
		for h.len() > 0 {
			p, _ := h.peek()
			g, _ := h.pop()
			if p != g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
