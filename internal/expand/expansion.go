package expand

import (
	"math"

	"mcn/internal/graph"
)

// Event is the outcome of one expansion step.
type Event uint8

// Step outcomes.
const (
	// EventNode means one network node was expanded (its adjacency record
	// was consumed and its neighbours en-heaped).
	EventNode Event = iota
	// EventFacility means the next nearest facility was discovered.
	EventFacility
	// EventExhausted means the expansion has reached everything reachable.
	EventExhausted
)

type nodePred struct {
	from      graph.NodeID
	edge      graph.EdgeID
	fromQuery bool
}

// Expansion is an incremental nearest-facility search from a query location
// under a single cost type: Dijkstra network expansion that en-heaps
// facilities along traversed edges and reports them in non-decreasing cost
// order (the NE technique of Papadias et al. that the paper builds on).
//
// Facilities pop in deterministic (cost, id) order — identical across the d
// per-cost expansions of a query — which the skyline algorithms' pinning
// arguments rely on (see heap.go).
//
// Bookkeeping lives in one of two interchangeable backings. The default is
// hash maps, which work for any Source. When the expansion is given a
// Scratch (WithScratch), it uses dense generation-stamped arrays indexed by
// NodeID/FacilityID instead: the steady-state pop loop then performs zero
// allocations, and repeated queries reuse the same backing arrays. Results
// are identical either way.
type Expansion struct {
	src  Source
	cost int
	loc  graph.Location
	// coster overrides the adjacency entries' embedded costs when the source
	// keeps its effective costs in an overlay (see EdgeCoster).
	coster EdgeCoster

	h minHeap

	// Dense state (ds != nil) or map state, never both.
	ds       *denseState
	scratch  *Scratch
	settled  map[graph.NodeID]struct{}
	bestNode map[graph.NodeID]float64
	popped   map[graph.FacilityID]struct{}
	bestFac  map[graph.FacilityID]float64

	// Shrinking-stage filters: when set, adjacency traversal skips facility
	// records of edges outside allowEdge, and only facilities passing
	// allowFac are en-heaped or reported (paper Sec. IV-A enhancements).
	allowEdge func(graph.EdgeID) bool
	allowFac  func(graph.FacilityID) bool

	trackPaths bool
	predNode   map[graph.NodeID]nodePred
	predFac    map[graph.FacilityID]nodePred

	// Lower-bound pruning (SetPrune): when lb is set, a popped node whose
	// key + lb.LowerBound(cost, node) the driver's prune predicate rejects is
	// settled without expansion — its adjacency record is never read.
	lb    LowerBounder
	prune func(costPlusBound float64) bool

	popCount    int
	nodeCount   int
	prunedCount int
}

// LowerBounder supplies per-criterion admissible lower bounds on the network
// distance from a node to the nearest facility: LowerBound(i, v) must never
// exceed dᵢ(v → p) for any facility p (the pruning index of internal/index).
// Implementations must be safe for concurrent use; expansions only read.
type LowerBounder interface {
	LowerBound(costIdx int, v graph.NodeID) float64
}

// Option configures an Expansion.
type Option func(*Expansion)

// WithPaths enables predecessor tracking so PathTo can reconstruct the
// shortest path (edge sequence) to any reported facility.
func WithPaths() Option {
	return func(x *Expansion) { x.trackPaths = true }
}

// WithScratch backs the expansion's Dijkstra state with dense arrays drawn
// from sc instead of hash maps. The scratch must have been sized for the
// expansion's source (same node/facility id space) and must not be serving
// another query concurrently. A nil sc is ignored, so callers can pass an
// optional scratch through unconditionally.
func WithScratch(sc *Scratch) Option {
	return func(x *Expansion) { x.scratch = sc }
}

// New starts an expansion from loc under cost type costIdx (0-based).
func New(src Source, costIdx int, loc graph.Location, opts ...Option) (*Expansion, error) {
	x := &Expansion{
		src:    src,
		cost:   costIdx,
		loc:    loc,
		coster: costerOf(src),
	}
	for _, o := range opts {
		o(x)
	}
	if x.scratch != nil {
		x.ds = x.scratch.state()
		x.h.a = x.ds.heap[:0]
	} else {
		x.settled = make(map[graph.NodeID]struct{})
		x.bestNode = make(map[graph.NodeID]float64)
		x.popped = make(map[graph.FacilityID]struct{})
		x.bestFac = make(map[graph.FacilityID]float64)
	}
	if x.trackPaths {
		x.predNode = make(map[graph.NodeID]nodePred)
		x.predFac = make(map[graph.FacilityID]nodePred)
	}

	info, err := src.EdgeInfo(loc.Edge)
	if err != nil {
		return nil, err
	}
	w := info.W[costIdx]

	// Seed the end-nodes of the query edge with their partial weights. In a
	// directed network only the forward end is reachable from q.
	x.pushNode(info.V, (1-loc.T)*w, nodePred{fromQuery: true, edge: loc.Edge})
	if !src.Directed() {
		x.pushNode(info.U, loc.T*w, nodePred{fromQuery: true, edge: loc.Edge})
	}

	// Facilities on the query edge are reachable directly along the edge,
	// possibly cheaper than via either end-node.
	if info.FacCount > 0 {
		facs, err := src.Facilities(info.FacRef, info.FacCount)
		if err != nil {
			return nil, err
		}
		for _, fe := range facs {
			var c float64
			if src.Directed() {
				if fe.T < loc.T {
					continue // behind q on a one-way segment
				}
				c = (fe.T - loc.T) * w
			} else {
				c = math.Abs(fe.T-loc.T) * w
			}
			x.pushFacility(fe.ID, c, nodePred{fromQuery: true, edge: loc.Edge})
		}
	}
	x.syncScratch()
	return x, nil
}

// syncScratch hands the (possibly re-grown) heap backing array back to the
// dense state so the next query reusing the scratch starts from the grown
// capacity instead of re-growing from empty.
func (x *Expansion) syncScratch() {
	if x.ds != nil {
		x.ds.heap = x.h.a
	}
}

// CostIndex returns the expansion's cost type.
func (x *Expansion) CostIndex() int { return x.cost }

// Location returns the query location the expansion started from.
func (x *Expansion) Location() graph.Location { return x.loc }

// PopCount returns the number of facilities reported so far.
func (x *Expansion) PopCount() int { return x.popCount }

// NodeCount returns the number of nodes expanded so far.
func (x *Expansion) NodeCount() int { return x.nodeCount }

// PrunedCount returns the number of node pops discarded by the SetPrune
// predicate instead of being expanded.
func (x *Expansion) PrunedCount() int { return x.prunedCount }

// SetPrune installs lower-bound node pruning: when a node v pops with key c
// and should(c + lb.LowerBound(CostIndex(), v)) returns true, the node is
// settled without expanding its adjacency — admissible because no facility
// reachable through v can pop below that sum. Drivers install it after
// construction (like SetFilter) with a predicate that consults their current
// result horizon; pass nils to clear. Pruned pops are transparent to
// Step/Next (they do not produce an event) and are counted by PrunedCount,
// not NodeCount.
//
// Soundness is the driver's contract: the predicate must only reject sums
// that provably cannot lead to a result facility under the driver's own
// semantics, and must account for float summation-order slack (see
// internal/index.SlackFactor).
func (x *Expansion) SetPrune(lb LowerBounder, should func(costPlusBound float64) bool) {
	if lb == nil || should == nil {
		x.lb, x.prune = nil, nil
		return
	}
	x.lb, x.prune = lb, should
}

// SetFilter installs the shrinking-stage filters; pass nil to clear either.
// Facilities already in the heap that fail allowFac are discarded when they
// surface.
func (x *Expansion) SetFilter(allowEdge func(graph.EdgeID) bool, allowFac func(graph.FacilityID) bool) {
	x.allowEdge = allowEdge
	x.allowFac = allowFac
}

// HeadKey returns the key at the head of the expansion heap: a lower bound
// on the cost of every facility not yet reported (the tᵢ threshold of the
// paper's top-k lower-bound pruning). It is +Inf once the expansion is
// exhausted, since anything unseen is unreachable under this cost type.
func (x *Expansion) HeadKey() float64 {
	if it, ok := x.h.peek(); ok {
		return it.key
	}
	return math.Inf(1)
}

func (x *Expansion) pushNode(v graph.NodeID, key float64, pred nodePred) {
	if ds := x.ds; ds != nil {
		if ds.nodeDone[v] == ds.gen {
			return
		}
		if ds.nodeSeen[v] == ds.gen && ds.bestNode[v] <= key {
			return
		}
		ds.nodeSeen[v] = ds.gen
		ds.bestNode[v] = key
	} else {
		if _, done := x.settled[v]; done {
			return
		}
		if best, seen := x.bestNode[v]; seen && best <= key {
			return
		}
		x.bestNode[v] = key
	}
	if x.trackPaths {
		x.predNode[v] = pred
	}
	x.h.push(item{key: key, kind: kindNode, id: uint32(v)})
}

func (x *Expansion) pushFacility(p graph.FacilityID, key float64, pred nodePred) {
	if ds := x.ds; ds != nil {
		if ds.facDone[p] == ds.gen {
			return
		}
		if ds.facSeen[p] == ds.gen && ds.bestFac[p] <= key {
			return
		}
		ds.facSeen[p] = ds.gen
		ds.bestFac[p] = key
	} else {
		if _, done := x.popped[p]; done {
			return
		}
		if best, seen := x.bestFac[p]; seen && best <= key {
			return
		}
		x.bestFac[p] = key
	}
	if x.trackPaths {
		x.predFac[p] = pred
	}
	x.h.push(item{key: key, kind: kindFacility, id: uint32(p)})
}

// nodeSettled reports whether v has been expanded already.
func (x *Expansion) nodeSettled(v graph.NodeID) bool {
	if ds := x.ds; ds != nil {
		return ds.nodeDone[v] == ds.gen
	}
	_, done := x.settled[v]
	return done
}

// facPopped reports whether p has been reported (or discarded by a filter).
func (x *Expansion) facPopped(p graph.FacilityID) bool {
	if ds := x.ds; ds != nil {
		return ds.facDone[p] == ds.gen
	}
	_, done := x.popped[p]
	return done
}

// markFacPopped records p as reported/discarded so stale heap entries skip.
func (x *Expansion) markFacPopped(p graph.FacilityID) {
	if ds := x.ds; ds != nil {
		ds.facDone[p] = ds.gen
	} else {
		x.popped[p] = struct{}{}
	}
}

// bestNodeKey returns the tentative cost of v; only meaningful for nodes
// currently or previously in the heap.
func (x *Expansion) bestNodeKey(v graph.NodeID) float64 {
	if ds := x.ds; ds != nil {
		return ds.bestNode[v]
	}
	return x.bestNode[v]
}

// bestFacKey returns the tentative cost of p; only meaningful for
// facilities currently or previously in the heap.
func (x *Expansion) bestFacKey(p graph.FacilityID) float64 {
	if ds := x.ds; ds != nil {
		return ds.bestFac[p]
	}
	return x.bestFac[p]
}

// Step advances the expansion by one event: it expands one node (EventNode),
// reports the next nearest facility (EventFacility, with its id and cost),
// or reports exhaustion. Stale heap entries are skipped transparently.
func (x *Expansion) Step() (Event, graph.FacilityID, float64, error) {
	ev, p, c, err := x.step()
	x.syncScratch()
	return ev, p, c, err
}

func (x *Expansion) step() (Event, graph.FacilityID, float64, error) {
	for {
		it, ok := x.h.pop()
		if !ok {
			return EventExhausted, 0, 0, nil
		}
		if it.kind == kindNode {
			v := graph.NodeID(it.id)
			if x.nodeSettled(v) {
				continue // stale
			}
			if x.bestNodeKey(v) < it.key {
				continue // superseded entry
			}
			if x.prune != nil && x.prune(it.key+x.lb.LowerBound(x.cost, v)) {
				// Settle without expanding: any later path to v is no cheaper,
				// so the discard stays valid even as the driver's horizon
				// tightens further.
				x.markNodeSettled(v)
				x.prunedCount++
				continue
			}
			if err := x.expandNode(v, it.key); err != nil {
				return 0, 0, 0, err
			}
			return EventNode, 0, it.key, nil
		}
		p := graph.FacilityID(it.id)
		if x.facPopped(p) {
			continue
		}
		if x.bestFacKey(p) < it.key {
			continue
		}
		if x.allowFac != nil && !x.allowFac(p) {
			// Left over from before the filter was installed; drop it so it
			// cannot surface again.
			x.markFacPopped(p)
			continue
		}
		x.markFacPopped(p)
		x.popCount++
		return EventFacility, p, it.key, nil
	}
}

// markNodeSettled records v as done so stale heap entries skip it.
func (x *Expansion) markNodeSettled(v graph.NodeID) {
	if ds := x.ds; ds != nil {
		ds.nodeDone[v] = ds.gen
	} else {
		x.settled[v] = struct{}{}
	}
}

func (x *Expansion) expandNode(v graph.NodeID, key float64) error {
	x.markNodeSettled(v)
	x.nodeCount++
	entries, err := x.src.Adjacency(v)
	if err != nil {
		return err
	}
	for i := range entries {
		e := &entries[i]
		var w float64
		if x.coster != nil {
			w = x.coster.EdgeCost(e.Edge, x.cost)
		} else {
			w = e.W[x.cost]
		}
		x.pushNode(e.Neighbor, key+w, nodePred{from: v, edge: e.Edge})
		if e.FacCount == 0 {
			continue
		}
		if x.allowEdge != nil && !x.allowEdge(e.Edge) {
			continue // shrinking stage: skip non-candidate facility records
		}
		facs, err := x.src.Facilities(e.FacRef, e.FacCount)
		if err != nil {
			return err
		}
		for _, fe := range facs {
			if x.allowFac != nil && !x.allowFac(fe.ID) {
				continue
			}
			partial := graph.PartialFrom(e.Forward, fe.T)
			x.pushFacility(fe.ID, key+partial*w, nodePred{from: v, edge: e.Edge})
		}
	}
	return nil
}

// Next advances until the next nearest facility is found. ok is false when
// the network is exhausted.
func (x *Expansion) Next() (p graph.FacilityID, cost float64, ok bool, err error) {
	for {
		ev, fac, c, err := x.Step()
		if err != nil {
			return 0, 0, false, err
		}
		switch ev {
		case EventFacility:
			return fac, c, true, nil
		case EventExhausted:
			return 0, 0, false, nil
		}
	}
}

// PathTo reconstructs the shortest path (as the traversed edge sequence from
// the query location to facility p) under this expansion's cost type. It
// requires WithPaths and that p has already been reported; ok is false
// otherwise.
func (x *Expansion) PathTo(p graph.FacilityID) (edges []graph.EdgeID, ok bool) {
	if !x.trackPaths {
		return nil, false
	}
	if !x.facPopped(p) {
		return nil, false
	}
	pred, ok := x.predFac[p]
	if !ok {
		return nil, false
	}
	edges = append(edges, pred.edge)
	for !pred.fromQuery {
		pred = x.predNode[pred.from]
		edges = append(edges, pred.edge)
	}
	// Reverse into query→facility order.
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges, true
}
