package expand

import (
	"math"
	"math/rand"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
)

// pathGraph builds an n-node unit-cost path with no facilities.
func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	topo := gen.Path(n)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 1), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNodeDistancesMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		g := randomGraph(t, rng, d, rng.Intn(3) == 0)
		loc := randomLocation(rng, g)
		var targets []graph.NodeID
		for i := 0; i < 1+rng.Intn(5); i++ {
			targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		for i := 0; i < d; i++ {
			oracle := testnet.NodeCosts(g, loc, i)
			got, err := NodeDistances(NewMemorySource(g), i, loc, targets, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range targets {
				want := oracle[v]
				gv := got[v]
				if math.IsInf(want, 1) != math.IsInf(gv, 1) {
					t.Fatalf("trial %d: node %d reachability mismatch (got %g, want %g)", trial, v, gv, want)
				}
				if !math.IsInf(want, 1) && math.Abs(gv-want) > 1e-9*(1+want) {
					t.Fatalf("trial %d: node %d dist %g, oracle %g", trial, v, gv, want)
				}
			}
		}
	}
}

// NodeDistances must terminate early: settling only nearby targets must
// touch far fewer adjacency records than the full network.
func TestNodeDistancesEarlyTermination(t *testing.T) {
	// Long path, target next to the query.
	g := pathGraph(t, 500)
	mem := NewMemorySource(g)
	loc := graph.Location{Edge: 0, T: 0}
	if _, err := NodeDistances(mem, 0, loc, []graph.NodeID{1}, nil); err != nil {
		t.Fatal(err)
	}
	if mem.Count.Snapshot().Adjacency > 10 {
		t.Errorf("early termination failed: %d adjacency reads for an adjacent target", mem.Count.Snapshot().Adjacency)
	}
}

func TestLocationCostsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 60; trial++ {
		d := 1 + rng.Intn(3)
		g := randomGraph(t, rng, d, rng.Intn(4) == 0)
		loc := randomLocation(rng, g)
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		tt := rng.Float64()

		got, err := LocationCosts(NewMemorySource(g), loc, e, tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: add a temporary facility at (e, tt) to a rebuilt graph.
		b := graph.NewBuilder(d, g.Directed())
		for v := 0; v < g.NumNodes(); v++ {
			n := g.Node(graph.NodeID(v))
			b.AddNode(n.X, n.Y)
		}
		for ei := 0; ei < g.NumEdges(); ei++ {
			edge := g.Edge(graph.EdgeID(ei))
			b.AddEdge(edge.U, edge.V, edge.W)
		}
		fid := b.AddFacility(e, tt)
		g2 := b.MustBuild()
		for i := 0; i < d; i++ {
			want := testnet.FacilityCosts(g2, loc, i)[fid]
			if math.IsInf(want, 1) != math.IsInf(got[i], 1) {
				t.Fatalf("trial %d: cost %d reachability mismatch (got %g want %g)", trial, i, got[i], want)
			}
			if !math.IsInf(want, 1) && math.Abs(got[i]-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: cost %d = %g, oracle %g", trial, i, got[i], want)
			}
		}
	}
}

// Dense-scratch probes must agree exactly with the map-based reference, and
// repeated probes through one scratch must not contaminate each other.
func TestNodeDistancesDenseMatchesMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(512))
	for trial := 0; trial < 30; trial++ {
		d := 1 + rng.Intn(3)
		topo := gen.RandomConnected(3+rng.Intn(25), rng.Intn(10), rng)
		costs := gen.AssignCosts(topo, d, gen.Independent, rng)
		g, err := gen.Assemble(topo, costs, gen.UniformFacilities(topo, 1+rng.Intn(8), rng), rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		src := NewMemorySource(g)
		sc := NewScratch(g.NumNodes(), g.NumEdges(), g.NumFacilities())
		loc := graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		var targets []graph.NodeID
		for len(targets) < 1+rng.Intn(4) {
			targets = append(targets, graph.NodeID(rng.Intn(g.NumNodes())))
		}
		for i := 0; i < d; i++ {
			sc.Reset()
			want, err := NodeDistances(src, i, loc, targets, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NodeDistances(src, i, loc, targets, sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range targets {
				if got[v] != want[v] && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
					t.Fatalf("trial %d cost %d node %d: dense %g != map %g", trial, i, v, got[v], want[v])
				}
			}
		}
		// LocationCosts through the same scratch, against the map path.
		e := graph.EdgeID(rng.Intn(g.NumEdges()))
		tt := rng.Float64()
		want, err := LocationCosts(src, loc, e, tt, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := LocationCosts(src, loc, e, tt, sc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] && !(math.IsInf(got[i], 1) && math.IsInf(want[i], 1)) {
				t.Fatalf("trial %d LocationCosts[%d]: dense %g != map %g", trial, i, got[i], want[i])
			}
		}
	}
}
