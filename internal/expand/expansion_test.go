package expand

import (
	"math"
	"math/rand"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/storage"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

// randomGraph builds a random connected multi-cost network with facilities.
func randomGraph(t *testing.T, rng *rand.Rand, d int, directed bool) *graph.Graph {
	t.Helper()
	n := 2 + rng.Intn(40)
	topo := gen.RandomConnected(n, rng.Intn(2*n), rng)
	var costs []vec.Costs
	if rng.Intn(2) == 0 {
		costs = gen.RandomIntegerCosts(topo, d, 4, rng) // tie stress
	} else {
		costs = gen.AssignCosts(topo, d, gen.Distribution(rng.Intn(3)), rng)
	}
	nf := 1 + rng.Intn(25)
	pls := gen.UniformFacilities(topo, nf, rng)
	g, err := gen.Assemble(topo, costs, pls, directed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomLocation(rng *rand.Rand, g *graph.Graph) graph.Location {
	return graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
}

// drain pops every facility from the expansion, asserting non-decreasing
// cost order and no duplicates.
func drain(t *testing.T, x *Expansion) map[graph.FacilityID]float64 {
	t.Helper()
	got := make(map[graph.FacilityID]float64)
	prev := math.Inf(-1)
	for {
		p, c, ok, err := x.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return got
		}
		if c < prev-1e-12 {
			t.Fatalf("facility %d popped at cost %g after %g (order violation)", p, c, prev)
		}
		prev = c
		if _, dup := got[p]; dup {
			t.Fatalf("facility %d reported twice", p)
		}
		got[p] = c
	}
}

func TestExpansionPathGraph(t *testing.T) {
	// 0 --(e0,w=2)-- 1 --(e1,w=4)-- 2, facilities at e0:0.5 and e1:0.25,
	// query at e0:0.25.
	b := graph.NewBuilder(1, false)
	b.AddNodes(3)
	e0 := b.AddEdge(0, 1, vec.Of(2))
	e1 := b.AddEdge(1, 2, vec.Of(4))
	f0 := b.AddFacility(e0, 0.5)
	f1 := b.AddFacility(e1, 0.25)
	g := b.MustBuild()

	src := NewMemorySource(g)
	x, err := New(src, 0, graph.Location{Edge: e0, T: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	p, c, ok, err := x.Next()
	if err != nil || !ok {
		t.Fatalf("first NN: %v %v", ok, err)
	}
	if p != f0 || math.Abs(c-0.5) > 1e-12 {
		t.Errorf("first NN = %d at %g, want %d at 0.5", p, c, f0)
	}
	p, c, ok, err = x.Next()
	if err != nil || !ok {
		t.Fatalf("second NN: %v %v", ok, err)
	}
	// To f1: 0.75·2 to node 1, then 0.25·4 = 1.5 + 1 = 2.5.
	if p != f1 || math.Abs(c-2.5) > 1e-12 {
		t.Errorf("second NN = %d at %g, want %d at 2.5", p, c, f1)
	}
	if _, _, ok, _ = x.Next(); ok {
		t.Error("expansion should be exhausted")
	}
}

func TestExpansionSameEdgeDirect(t *testing.T) {
	// Query and facility on the same edge; the direct walk must beat the
	// route via the end-nodes.
	b := graph.NewBuilder(1, false)
	b.AddNodes(2)
	e := b.AddEdge(0, 1, vec.Of(10))
	f := b.AddFacility(e, 0.6)
	g := b.MustBuild()
	x, err := New(NewMemorySource(g), 0, graph.Location{Edge: e, T: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	p, c, ok, err := x.Next()
	if err != nil || !ok || p != f {
		t.Fatalf("NN = %d %v %v", p, ok, err)
	}
	if math.Abs(c-2.0) > 1e-12 {
		t.Errorf("cost = %g, want 2.0 (direct 0.2·10)", c)
	}
}

func TestExpansionDirectedBehindQuery(t *testing.T) {
	// One-way edge: facility behind the query is unreachable without a
	// cycle; with a cycle it is reachable the long way round.
	b := graph.NewBuilder(1, true)
	b.AddNodes(2)
	e0 := b.AddEdge(0, 1, vec.Of(1))
	f := b.AddFacility(e0, 0.1)
	g := b.MustBuild()
	x, err := New(NewMemorySource(g), 0, graph.Location{Edge: e0, T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := x.Next(); ok {
		t.Fatal("facility behind q on one-way dead-end edge must be unreachable")
	}

	// Add the return edge 1→0: now reachable via the cycle.
	b2 := graph.NewBuilder(1, true)
	b2.AddNodes(2)
	e0 = b2.AddEdge(0, 1, vec.Of(1))
	b2.AddEdge(1, 0, vec.Of(1))
	f = b2.AddFacility(e0, 0.1)
	g2 := b2.MustBuild()
	x2, err := New(NewMemorySource(g2), 0, graph.Location{Edge: e0, T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p, c, ok, err := x2.Next()
	if err != nil || !ok || p != f {
		t.Fatalf("NN = %d %v %v", p, ok, err)
	}
	// 0.5 to node 1, 1 back to node 0, 0.1 along e0.
	if math.Abs(c-1.6) > 1e-12 {
		t.Errorf("cost = %g, want 1.6", c)
	}
}

func TestExpansionTieOrderById(t *testing.T) {
	// Star: three facilities at identical cost must pop in id order.
	b := graph.NewBuilder(1, false)
	center := b.AddNode(0, 0)
	for i := 0; i < 3; i++ {
		v := b.AddNode(1, float64(i))
		e := b.AddEdge(center, v, vec.Of(2))
		b.AddFacility(e, 0.5)
	}
	g := b.MustBuild()
	loc, err := graph.LocationAtNode(g, center)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(NewMemorySource(g), 0, loc)
	if err != nil {
		t.Fatal(err)
	}
	for want := graph.FacilityID(0); want < 3; want++ {
		p, c, ok, err := x.Next()
		if err != nil || !ok {
			t.Fatal(err)
		}
		if p != want {
			t.Errorf("tie pop %d: got facility %d, want %d", want, p, want)
		}
		if math.Abs(c-1.0) > 1e-12 {
			t.Errorf("cost = %g, want 1", c)
		}
	}
}

// Expansion must agree with the Bellman-Ford oracle on random graphs, for
// every cost type, over memory sources.
func TestExpansionMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		d := 1 + rng.Intn(3)
		directed := rng.Intn(3) == 0
		g := randomGraph(t, rng, d, directed)
		loc := randomLocation(rng, g)
		for i := 0; i < d; i++ {
			oracle := testnet.FacilityCosts(g, loc, i)
			x, err := New(NewMemorySource(g), i, loc)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, x)
			for p := 0; p < g.NumFacilities(); p++ {
				want := oracle[p]
				c, found := got[graph.FacilityID(p)]
				if math.IsInf(want, 1) {
					if found {
						t.Fatalf("trial %d cost %d: unreachable facility %d reported at %g", trial, i, p, c)
					}
					continue
				}
				if !found {
					t.Fatalf("trial %d cost %d: facility %d (cost %g) never reported", trial, i, p, want)
				}
				if math.Abs(c-want) > 1e-9*(1+want) {
					t.Fatalf("trial %d cost %d: facility %d cost %g, oracle %g", trial, i, p, c, want)
				}
			}
		}
	}
}

// The same agreement must hold end-to-end through the disk layer.
func TestExpansionMatchesOracleOnDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 25; trial++ {
		d := 1 + rng.Intn(3)
		g := randomGraph(t, rng, d, false)
		dev, err := storage.BuildMem(g)
		if err != nil {
			t.Fatal(err)
		}
		net, err := storage.Open(dev, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		loc := randomLocation(rng, g)
		for i := 0; i < d; i++ {
			oracle := testnet.FacilityCosts(g, loc, i)
			x, err := New(net, i, loc)
			if err != nil {
				t.Fatal(err)
			}
			got := drain(t, x)
			for p := 0; p < g.NumFacilities(); p++ {
				want := oracle[p]
				c, found := got[graph.FacilityID(p)]
				if math.IsInf(want, 1) != !found {
					t.Fatalf("trial %d: reachability mismatch for facility %d", trial, p)
				}
				if found && math.Abs(c-want) > 1e-9*(1+want) {
					t.Fatalf("trial %d: facility %d cost %g, oracle %g", trial, p, c, want)
				}
			}
		}
	}
}

func TestSharedSourceAccessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		d := 2 + rng.Intn(3)
		g := randomGraph(t, rng, d, false)
		loc := randomLocation(rng, g)

		mem := NewMemorySource(g)
		shared := NewSharedSource(mem)
		for i := 0; i < d; i++ {
			x, err := New(shared, i, loc)
			if err != nil {
				t.Fatal(err)
			}
			drain(t, x)
		}
		if mem.Count.Snapshot().Adjacency > int64(g.NumNodes()) {
			t.Fatalf("shared source fetched %d adjacency records for %d nodes", mem.Count.Snapshot().Adjacency, g.NumNodes())
		}
		if mem.Count.Snapshot().Facilities > int64(g.NumEdges()) {
			t.Fatalf("shared source fetched %d facility records for %d edges", mem.Count.Snapshot().Facilities, g.NumEdges())
		}

		// An unshared run of the same expansions must fetch at least as much.
		mem2 := NewMemorySource(g)
		for i := 0; i < d; i++ {
			x, err := New(mem2, i, loc)
			if err != nil {
				t.Fatal(err)
			}
			drain(t, x)
		}
		if mem2.Count.Snapshot().Adjacency < mem.Count.Snapshot().Adjacency {
			t.Fatalf("unshared adjacency accesses (%d) < shared (%d)?", mem2.Count.Snapshot().Adjacency, mem.Count.Snapshot().Adjacency)
		}
	}
}

func TestSharedSourceSameResults(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(2)
		g := randomGraph(t, rng, d, rng.Intn(2) == 0)
		loc := randomLocation(rng, g)
		for i := 0; i < d; i++ {
			xa, err := New(NewMemorySource(g), i, loc)
			if err != nil {
				t.Fatal(err)
			}
			xb, err := New(NewSharedSource(NewMemorySource(g)), i, loc)
			if err != nil {
				t.Fatal(err)
			}
			for {
				pa, ca, oka, err := xa.Next()
				if err != nil {
					t.Fatal(err)
				}
				pb, cb, okb, err := xb.Next()
				if err != nil {
					t.Fatal(err)
				}
				if oka != okb || pa != pb || math.Abs(ca-cb) > 1e-12 {
					t.Fatalf("shared expansion diverged: (%d,%g,%v) vs (%d,%g,%v)", pa, ca, oka, pb, cb, okb)
				}
				if !oka {
					break
				}
			}
		}
	}
}

func TestFacilityFilterSkipsRecords(t *testing.T) {
	// Two facilities on separate edges; allow only edge 1's facility. The
	// facility record of edge 0 must not be read after the filter is set.
	b := graph.NewBuilder(1, false)
	b.AddNodes(3)
	e0 := b.AddEdge(0, 1, vec.Of(1))
	e1 := b.AddEdge(1, 2, vec.Of(1))
	b.AddFacility(e0, 0.5)
	f1 := b.AddFacility(e1, 0.5)
	g := b.MustBuild()

	mem := NewMemorySource(g)
	loc, err := graph.LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(mem, 0, loc)
	if err != nil {
		t.Fatal(err)
	}
	x.SetFilter(
		func(e graph.EdgeID) bool { return e == e1 },
		func(p graph.FacilityID) bool { return p == f1 },
	)
	p, _, ok, err := x.Next()
	if err != nil || !ok {
		t.Fatal(err)
	}
	if p != f1 {
		t.Errorf("filtered NN = %d, want %d", p, f1)
	}
	// Only edge e1's facility record may have been fetched. (The query edge
	// record was read before the filter via EdgeInfo, not Facilities,
	// because node-0 placement puts q at an end-node of e0 — e0's record is
	// read via EdgeInfo's FacRef during New; tolerate exactly that one.)
	if mem.Count.Snapshot().Facilities > 2 {
		t.Errorf("facility records fetched %d times, want ≤ 2", mem.Count.Snapshot().Facilities)
	}
}

func TestFilterDropsInHeapFacilities(t *testing.T) {
	// A facility already en-heaped before the filter is installed must not
	// surface afterwards.
	b := graph.NewBuilder(1, false)
	b.AddNodes(2)
	e := b.AddEdge(0, 1, vec.Of(1))
	b.AddFacility(e, 0.9) // en-heaped at init (same edge as query)
	g := b.MustBuild()
	x, err := New(NewMemorySource(g), 0, graph.Location{Edge: e, T: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	x.SetFilter(func(graph.EdgeID) bool { return false }, func(graph.FacilityID) bool { return false })
	if _, _, ok, _ := x.Next(); ok {
		t.Error("filtered-out facility surfaced")
	}
}

func TestHeadKeyLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(t, rng, 1, false)
		loc := randomLocation(rng, g)
		x, err := New(NewMemorySource(g), 0, loc)
		if err != nil {
			t.Fatal(err)
		}
		for {
			head := x.HeadKey()
			p, c, ok, err := x.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				if !math.IsInf(x.HeadKey(), 1) {
					t.Fatal("exhausted expansion must report +Inf head key")
				}
				break
			}
			if c < head-1e-12 {
				t.Fatalf("facility %d at %g popped below head key %g", p, c, head)
			}
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		g := randomGraph(t, rng, 2, false)
		loc := randomLocation(rng, g)
		x, err := New(NewMemorySource(g), 0, loc, WithPaths())
		if err != nil {
			t.Fatal(err)
		}
		for {
			p, c, ok, err := x.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			edges, ok := x.PathTo(p)
			if !ok || len(edges) == 0 {
				t.Fatalf("no path for reported facility %d", p)
			}
			if edges[0] != loc.Edge {
				t.Fatalf("path must start on the query edge: %v", edges)
			}
			if edges[len(edges)-1] != g.Facility(p).Edge {
				t.Fatalf("path must end on the facility edge: %v", edges)
			}
			// Adjacent edges in the path must share a node.
			for i := 1; i < len(edges); i++ {
				a, bb := g.Edge(edges[i-1]), g.Edge(edges[i])
				if a.U != bb.U && a.U != bb.V && a.V != bb.U && a.V != bb.V {
					t.Fatalf("path edges %d and %d not adjacent", edges[i-1], edges[i])
				}
			}
			// Path cost sanity: sum of full edge weights (excluding the two
			// partial ends) must bound the reported cost from above plus the
			// partials; a loose but real check is that reported cost does
			// not exceed the total weight of all path edges.
			total := 0.0
			for _, e := range edges {
				total += g.Edge(e).W[0]
			}
			if c > total+1e-9 {
				t.Fatalf("reported cost %g exceeds path weight %g", c, total)
			}
		}
	}
}

func TestPathToWithoutTracking(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(48)), 1, false)
	x, err := New(NewMemorySource(g), 0, graph.Location{Edge: 0, T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := x.PathTo(0); ok {
		t.Error("PathTo must fail without WithPaths")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h minHeap
	h.push(item{key: 2, kind: kindFacility, id: 9})
	h.push(item{key: 2, kind: kindNode, id: 5})
	h.push(item{key: 1, kind: kindFacility, id: 1})
	h.push(item{key: 2, kind: kindFacility, id: 3})

	want := []item{
		{key: 1, kind: kindFacility, id: 1},
		{key: 2, kind: kindNode, id: 5},
		{key: 2, kind: kindFacility, id: 3},
		{key: 2, kind: kindFacility, id: 9},
	}
	for i, w := range want {
		got, ok := h.pop()
		if !ok || got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := h.pop(); ok {
		t.Error("heap should be empty")
	}
	if _, ok := h.peek(); ok {
		t.Error("peek on empty heap should fail")
	}
}

func TestHeapRandomizedSort(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 20; trial++ {
		var h minHeap
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			h.push(item{key: float64(rng.Intn(20)), kind: itemKind(rng.Intn(2)), id: uint32(rng.Intn(50))})
		}
		prev, _ := h.pop()
		for {
			cur, ok := h.pop()
			if !ok {
				break
			}
			if cur.less(prev) {
				t.Fatalf("heap order violated: %+v after %+v", cur, prev)
			}
			prev = cur
		}
	}
}
