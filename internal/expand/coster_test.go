package expand

import (
	"math"
	"testing"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// costerSource wraps a MemorySource with an EdgeCoster scaling every cost,
// modelling an overlay source: the AdjEntry rows keep base costs (which the
// expansion must ignore) while EdgeCost and EdgeInfo serve the scaled ones.
type costerSource struct {
	*MemorySource
	factor float64
}

func (c *costerSource) EdgeCost(e graph.EdgeID, costIdx int) float64 {
	return c.MemorySource.Graph().Edge(e).W[costIdx] * c.factor
}

func (c *costerSource) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	info, err := c.MemorySource.EdgeInfo(e)
	if err != nil {
		return info, err
	}
	w := make(vec.Costs, len(info.W))
	for i := range w {
		w[i] = info.W[i] * c.factor
	}
	info.W = w
	return info, nil
}

// An expansion over an EdgeCoster source must take every arc weight from
// EdgeCost, not from the entries' embedded W slices — reported costs come
// out scaled, in the same pop order, directly and through a SharedSource
// (costerOf must see through the per-query sharing layer).
func TestExpansionHonoursEdgeCoster(t *testing.T) {
	g := lineGraph(t)
	loc := graph.Location{Edge: 0, T: 0}
	base := NewMemorySource(g)
	scaled := &costerSource{MemorySource: NewMemorySource(g), factor: 3}

	collect := func(src Source) (ids []graph.FacilityID, costs []float64) {
		x, err := New(src, 0, loc)
		if err != nil {
			t.Fatal(err)
		}
		for {
			p, c, ok, err := x.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return ids, costs
			}
			ids = append(ids, p)
			costs = append(costs, c)
		}
	}

	baseIDs, baseCosts := collect(base)
	if len(baseIDs) == 0 {
		t.Fatal("no facilities popped")
	}
	for _, src := range []Source{scaled, NewSharedSource(scaled)} {
		ids, costs := collect(src)
		if len(ids) != len(baseIDs) {
			t.Fatalf("popped %d facilities, want %d", len(ids), len(baseIDs))
		}
		for i := range ids {
			if ids[i] != baseIDs[i] {
				t.Errorf("pop %d: facility %d, want %d (order must be unchanged)", i, ids[i], baseIDs[i])
			}
			if want := baseCosts[i] * 3; math.Abs(costs[i]-want) > 1e-12 {
				t.Errorf("pop %d: cost %g, want %g (3x base)", i, costs[i], want)
			}
		}
	}
}

// NodeDistances must honour the coster too: probe distances triple with the
// 3x overlay.
func TestNodeDistancesHonoursEdgeCoster(t *testing.T) {
	g := lineGraph(t)
	loc := graph.Location{Edge: 0, T: 0}
	targets := []graph.NodeID{2, 3}
	base, err := NodeDistances(NewMemorySource(g), 0, loc, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := NodeDistances(&costerSource{MemorySource: NewMemorySource(g), factor: 3}, 0, loc, targets, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range targets {
		if want := base[v] * 3; math.Abs(scaled[v]-want) > 1e-12 {
			t.Errorf("node %d: distance %g, want %g (3x base)", v, scaled[v], want)
		}
	}
}

// lineGraph is a 4-node path with facilities spread along it.
func lineGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(1, false)
	n := make([]graph.NodeID, 4)
	for i := range n {
		n[i] = b.AddNode(float64(i), 0)
	}
	e01 := b.AddEdge(n[0], n[1], vec.Of(2))
	b.AddEdge(n[1], n[2], vec.Of(3))
	e23 := b.AddEdge(n[2], n[3], vec.Of(4))
	b.AddFacility(e01, 0.5)
	b.AddFacility(e23, 0.25)
	return b.MustBuild()
}
