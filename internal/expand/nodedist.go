package expand

import (
	"math"

	"mcn/internal/graph"
)

// NodeDistances runs a single-cost Dijkstra from loc until every node in
// targets is settled (or the network is exhausted) and returns the exact
// distances of the targets; unreached targets map to +Inf. This is the
// point-probe primitive used for dynamic facility maintenance: computing the
// cost vector of one new facility needs only the distances of its edge's
// end-nodes.
//
// When sc is non-nil the probe draws one dense generation-stamped state unit
// from it instead of building fresh hash maps, so repeated probes (a
// Maintainer absorbing a stream of insertions) run allocation-light on
// in-memory sources. The scratch must not be serving another query
// concurrently. Results are identical either way.
func NodeDistances(src Source, costIdx int, loc graph.Location, targets []graph.NodeID, sc *Scratch) (map[graph.NodeID]float64, error) {
	out := make(map[graph.NodeID]float64, len(targets))
	want := make(map[graph.NodeID]bool, len(targets))
	for _, v := range targets {
		out[v] = math.Inf(1)
		want[v] = true
	}
	remaining := len(want)

	info, err := src.EdgeInfo(loc.Edge)
	if err != nil {
		return nil, err
	}
	w := info.W[costIdx]
	coster := costerOf(src)

	var h minHeap
	var ds *denseState
	var best map[graph.NodeID]float64
	var settled map[graph.NodeID]struct{}
	if sc != nil {
		ds = sc.state()
		h.a = ds.heap[:0]
	} else {
		best = make(map[graph.NodeID]float64)
		settled = make(map[graph.NodeID]struct{})
	}
	push := func(v graph.NodeID, key float64) {
		if ds != nil {
			if ds.nodeDone[v] == ds.gen {
				return
			}
			if ds.nodeSeen[v] == ds.gen && ds.bestNode[v] <= key {
				return
			}
			ds.nodeSeen[v] = ds.gen
			ds.bestNode[v] = key
		} else {
			if _, done := settled[v]; done {
				return
			}
			if b, ok := best[v]; ok && b <= key {
				return
			}
			best[v] = key
		}
		h.push(item{key: key, kind: kindNode, id: uint32(v)})
	}
	push(info.V, (1-loc.T)*w)
	if !src.Directed() {
		push(info.U, loc.T*w)
	}

	for remaining > 0 {
		it, ok := h.pop()
		if !ok {
			break
		}
		v := graph.NodeID(it.id)
		if ds != nil {
			if ds.nodeDone[v] == ds.gen {
				continue
			}
			if ds.bestNode[v] < it.key {
				continue
			}
			ds.nodeDone[v] = ds.gen
		} else {
			if _, done := settled[v]; done {
				continue
			}
			if best[v] < it.key {
				continue
			}
			settled[v] = struct{}{}
		}
		if want[v] {
			out[v] = it.key
			want[v] = false
			remaining--
			if remaining == 0 {
				break
			}
		}
		entries, err := src.Adjacency(v)
		if err != nil {
			return nil, err
		}
		for i := range entries {
			we := entries[i].W[costIdx]
			if coster != nil {
				we = coster.EdgeCost(entries[i].Edge, costIdx)
			}
			push(entries[i].Neighbor, it.key+we)
		}
	}
	if ds != nil {
		// Hand the (possibly re-grown) heap backing back for the next probe.
		ds.heap = h.a
	}
	return out, nil
}

// LocationCosts computes the full cost vector from loc to a point at
// fraction t on edge e, using d early-terminating NodeDistances probes plus
// the partial edge weights (and the direct same-edge walk when applicable).
// A non-nil sc backs every probe with dense scratch state; LocationCosts
// resets it between probes, so the caller must own it exclusively and must
// not have live expansion state drawn from it.
func LocationCosts(src Source, loc graph.Location, e graph.EdgeID, t float64, sc *Scratch) (costs []float64, err error) {
	info, err := src.EdgeInfo(e)
	if err != nil {
		return nil, err
	}
	d := src.D()
	costs = make([]float64, d)
	for i := 0; i < d; i++ {
		if sc != nil {
			sc.Reset() // reuse one state unit across the d probes
		}
		dist, err := NodeDistances(src, i, loc, []graph.NodeID{info.U, info.V}, sc)
		if err != nil {
			return nil, err
		}
		w := info.W[i]
		c := dist[info.U] + t*w
		if !src.Directed() {
			c = math.Min(c, dist[info.V]+(1-t)*w)
		}
		if e == loc.Edge {
			if src.Directed() {
				if t >= loc.T {
					c = math.Min(c, (t-loc.T)*w)
				}
			} else {
				c = math.Min(c, math.Abs(t-loc.T)*w)
			}
		}
		costs[i] = c
	}
	return costs, nil
}
