package expand

// itemKind distinguishes heap entries. Nodes order before facilities at
// equal key so that, by the time any facility at cost x pops, every node
// within cost x has been expanded — which means every facility with cost
// ≤ x has been discovered and equal-cost facilities pop in a deterministic
// id order that is identical across the d expansions. LSA's and CEA's
// correctness arguments (and our tie-robust extension) rely on this
// deterministic order.
type itemKind uint8

const (
	kindNode itemKind = iota
	kindFacility
)

// item is one heap entry: a network node or a facility with its tentative
// cost under the expansion's cost type.
type item struct {
	key  float64
	kind itemKind
	id   uint32
}

// less orders by (key, kind, id); see itemKind for why.
func (a item) less(b item) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

// minHeap is a binary min-heap of items. The zero value is an empty heap.
type minHeap struct {
	a []item
}

func (h *minHeap) len() int { return len(h.a) }

func (h *minHeap) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.a[i].less(h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

// peek returns the minimum item without removing it; ok is false when empty.
func (h *minHeap) peek() (item, bool) {
	if len(h.a) == 0 {
		return item{}, false
	}
	return h.a[0], true
}

// pop removes and returns the minimum item; ok is false when empty.
func (h *minHeap) pop() (item, bool) {
	if len(h.a) == 0 {
		return item{}, false
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	h.siftDown(0)
	return top, true
}

func (h *minHeap) siftDown(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.a[l].less(h.a[small]) {
			small = l
		}
		if r < n && h.a[r].less(h.a[small]) {
			small = r
		}
		if small == i {
			return
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
}
