// Package expand implements incremental network expansion over multi-cost
// networks: the nearest-neighbour primitive (network expansion, NE [1]) that
// LSA probes once per cost type, and the record-sharing source that turns
// the same machinery into CEA by guaranteeing at most one underlying access
// per adjacency or facility record per query.
package expand

import (
	"fmt"
	"sync/atomic"

	"mcn/internal/graph"
)

// Source provides the network data an expansion consumes. Both the
// disk-resident storage.Network and the in-memory MemorySource satisfy it.
type Source interface {
	// D returns the number of cost types.
	D() int
	// Directed reports whether edges are traversable from U to V only.
	Directed() bool
	// Adjacency returns the outgoing arcs of v with edge cost vectors and
	// facility-record pointers.
	Adjacency(v graph.NodeID) ([]graph.AdjEntry, error)
	// Facilities resolves a facility record reference.
	Facilities(facRef uint64, count int) ([]graph.FacEntry, error)
	// FacilityEdge returns the edge a facility lies on.
	FacilityEdge(p graph.FacilityID) (graph.EdgeID, error)
	// EdgeInfo resolves an edge to its end-nodes, costs and facilities.
	EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error)
}

// EdgeCoster is implemented by sources whose effective edge costs live in a
// cost overlay separate from the adjacency records — the time-dependent flat
// overlay, whose AdjEntry rows are compiled once and shared by every cost
// interval. When a source implements EdgeCoster, expansions take each arc's
// weight from EdgeCost instead of the entry's embedded W slice (the W fields
// then hold the base-interval costs and are not consulted). EdgeCost must be
// cheap and allocation-free: it sits in the Dijkstra relaxation loop.
type EdgeCoster interface {
	EdgeCost(e graph.EdgeID, costIdx int) float64
}

// costerOf returns the EdgeCoster behind src, unwrapping the per-query
// sharing layer (a SharedSource memoises records but must not hide the cost
// overlay of the source it wraps). Nil when costs live in the records.
func costerOf(src Source) EdgeCoster {
	if ss, ok := src.(*SharedSource); ok {
		return costerOf(ss.src)
	}
	if ec, ok := src.(EdgeCoster); ok {
		return ec
	}
	return nil
}

// Counter tallies logical source accesses, used by tests and benchmarks to
// verify sharing guarantees (e.g. CEA's ≤ 1 access per record). Sources
// increment the fields atomically; read them through Snapshot, which loads
// atomically and is therefore safe while queries are in flight.
type Counter struct {
	Adjacency    int64
	Facilities   int64
	EdgeInfo     int64
	FacilityEdge int64
}

// Snapshot returns an atomically-loaded copy of the counters. This is the
// race-free way to read a Counter that concurrent queries may still be
// incrementing.
func (c *Counter) Snapshot() Counter {
	return Counter{
		Adjacency:    atomic.LoadInt64(&c.Adjacency),
		Facilities:   atomic.LoadInt64(&c.Facilities),
		EdgeInfo:     atomic.LoadInt64(&c.EdgeInfo),
		FacilityEdge: atomic.LoadInt64(&c.FacilityEdge),
	}
}

// Total returns the sum of all access counts.
func (c Counter) Total() int64 {
	return c.Adjacency + c.Facilities + c.EdgeInfo + c.FacilityEdge
}

// MemorySource adapts an in-memory graph.Graph to the Source interface. It
// counts accesses (one per call) so algorithm-level access patterns can be
// asserted without a disk layer. Counts are incremented atomically — one
// MemorySource may serve many concurrent queries — and are read race-free
// through Count.Snapshot. MemorySource rebuilds each adjacency row on every
// call; it is the reference implementation, with flat.Source as the
// zero-allocation fast path production queries use.
type MemorySource struct {
	g     *graph.Graph
	Count Counter
}

// NewMemorySource returns a Source reading from g.
func NewMemorySource(g *graph.Graph) *MemorySource {
	return &MemorySource{g: g}
}

// Graph returns the underlying graph.
func (m *MemorySource) Graph() *graph.Graph { return m.g }

// D implements Source.
func (m *MemorySource) D() int { return m.g.D() }

// Directed implements Source.
func (m *MemorySource) Directed() bool { return m.g.Directed() }

// Adjacency implements Source.
func (m *MemorySource) Adjacency(v graph.NodeID) ([]graph.AdjEntry, error) {
	if int(v) >= m.g.NumNodes() {
		return nil, fmt.Errorf("expand: node %d out of range", v)
	}
	atomic.AddInt64(&m.Count.Adjacency, 1)
	arcs := m.g.Arcs(v)
	entries := make([]graph.AdjEntry, len(arcs))
	for i, a := range arcs {
		facs := m.g.EdgeFacilities(a.Edge)
		ref := graph.NoFacRef
		if len(facs) > 0 {
			ref = uint64(a.Edge)
		}
		entries[i] = graph.AdjEntry{
			Neighbor: a.Neighbor,
			Edge:     a.Edge,
			Forward:  a.Forward,
			W:        m.g.Edge(a.Edge).W,
			FacRef:   ref,
			FacCount: len(facs),
		}
	}
	return entries, nil
}

// Facilities implements Source. For MemorySource the record reference is the
// edge id itself.
func (m *MemorySource) Facilities(facRef uint64, count int) ([]graph.FacEntry, error) {
	if facRef == graph.NoFacRef || count == 0 {
		return nil, nil
	}
	e := graph.EdgeID(facRef)
	if int(e) >= m.g.NumEdges() {
		return nil, fmt.Errorf("expand: facility ref %d out of range", facRef)
	}
	atomic.AddInt64(&m.Count.Facilities, 1)
	ids := m.g.EdgeFacilities(e)
	out := make([]graph.FacEntry, len(ids))
	for i, id := range ids {
		out[i] = graph.FacEntry{ID: id, T: m.g.Facility(id).T}
	}
	return out, nil
}

// FacilityEdge implements Source.
func (m *MemorySource) FacilityEdge(p graph.FacilityID) (graph.EdgeID, error) {
	if int(p) >= m.g.NumFacilities() {
		return 0, fmt.Errorf("expand: facility %d out of range", p)
	}
	atomic.AddInt64(&m.Count.FacilityEdge, 1)
	return m.g.Facility(p).Edge, nil
}

// EdgeInfo implements Source.
func (m *MemorySource) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	if int(e) >= m.g.NumEdges() {
		return graph.EdgeInfo{}, fmt.Errorf("expand: edge %d out of range", e)
	}
	atomic.AddInt64(&m.Count.EdgeInfo, 1)
	edge := m.g.Edge(e)
	facs := m.g.EdgeFacilities(e)
	ref := graph.NoFacRef
	if len(facs) > 0 {
		ref = uint64(e)
	}
	return graph.EdgeInfo{U: edge.U, V: edge.V, W: edge.W, FacRef: ref, FacCount: len(facs)}, nil
}

// SharedSource memoises every record fetched from an underlying source for
// the lifetime of one query. Running the d per-cost expansions of a query
// over one SharedSource yields CEA's defining guarantee: each node's
// adjacency information and each edge's facility record is fetched from the
// underlying store at most once per query, no matter how many expansions
// traverse it (paper Sec. IV-B).
type SharedSource struct {
	src      Source
	adj      map[graph.NodeID][]graph.AdjEntry
	facs     map[uint64][]graph.FacEntry
	edges    map[graph.EdgeID]graph.EdgeInfo
	facEdges map[graph.FacilityID]graph.EdgeID
}

// NewSharedSource returns a fresh per-query sharing layer over src.
func NewSharedSource(src Source) *SharedSource {
	return &SharedSource{
		src:      src,
		adj:      make(map[graph.NodeID][]graph.AdjEntry),
		facs:     make(map[uint64][]graph.FacEntry),
		edges:    make(map[graph.EdgeID]graph.EdgeInfo),
		facEdges: make(map[graph.FacilityID]graph.EdgeID),
	}
}

// D implements Source.
func (s *SharedSource) D() int { return s.src.D() }

// Directed implements Source.
func (s *SharedSource) Directed() bool { return s.src.Directed() }

// Adjacency implements Source.
func (s *SharedSource) Adjacency(v graph.NodeID) ([]graph.AdjEntry, error) {
	if entries, ok := s.adj[v]; ok {
		return entries, nil
	}
	entries, err := s.src.Adjacency(v)
	if err != nil {
		return nil, err
	}
	s.adj[v] = entries
	return entries, nil
}

// Facilities implements Source.
func (s *SharedSource) Facilities(facRef uint64, count int) ([]graph.FacEntry, error) {
	if facRef == graph.NoFacRef || count == 0 {
		return nil, nil
	}
	if facs, ok := s.facs[facRef]; ok {
		return facs, nil
	}
	facs, err := s.src.Facilities(facRef, count)
	if err != nil {
		return nil, err
	}
	s.facs[facRef] = facs
	return facs, nil
}

// FacilityEdge implements Source.
func (s *SharedSource) FacilityEdge(p graph.FacilityID) (graph.EdgeID, error) {
	if e, ok := s.facEdges[p]; ok {
		return e, nil
	}
	e, err := s.src.FacilityEdge(p)
	if err != nil {
		return 0, err
	}
	s.facEdges[p] = e
	return e, nil
}

// EdgeInfo implements Source.
func (s *SharedSource) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	if info, ok := s.edges[e]; ok {
		return info, nil
	}
	info, err := s.src.EdgeInfo(e)
	if err != nil {
		return graph.EdgeInfo{}, err
	}
	s.edges[e] = info
	return info, nil
}
