package expand

import (
	"sync"

	"mcn/internal/graph"
)

// Sized is implemented by sources whose node, edge and facility identifier
// spaces are dense [0, N) ranges of known size — in-memory CSR networks and
// the paper's disk store, whose record ids are builder order. It is the
// capability the array-backed expansion state needs: direct indexing by
// NodeID, EdgeID and FacilityID.
type Sized interface {
	Source
	NumNodes() int
	NumEdges() int
	NumFacilities() int
}

// ZeroCopy is implemented by sources whose Adjacency and Facilities calls
// return shared read-only slices at no per-call cost. For such sources CEA's
// per-query record memo saves nothing — there is no underlying fetch to
// amortise — so the engine layer skips the SharedSource wrapper entirely.
type ZeroCopy interface {
	ZeroCopyRecords() bool
}

// denseState is the array-backed Dijkstra state of one Expansion: best-known
// costs and settled/popped markers indexed directly by NodeID / FacilityID,
// plus a reusable heap backing array. A generation stamp makes reuse O(1):
// bumping gen logically clears every marker without touching the arrays, so
// repeated queries never re-make or zero their state.
type denseState struct {
	gen      uint32
	bestNode []float64 // tentative node cost; valid where nodeSeen[v] == gen
	nodeSeen []uint32  // node ever en-heaped this generation
	nodeDone []uint32  // node settled this generation
	bestFac  []float64 // tentative facility cost; valid where facSeen[p] == gen
	facSeen  []uint32
	facDone  []uint32 // facility reported (or filter-discarded) this generation
	heap     []item   // heap backing, grown once and reused across queries
}

func newDenseState(nodes, facs int) *denseState {
	return &denseState{
		bestNode: make([]float64, nodes),
		nodeSeen: make([]uint32, nodes),
		nodeDone: make([]uint32, nodes),
		bestFac:  make([]float64, facs),
		facSeen:  make([]uint32, facs),
		facDone:  make([]uint32, facs),
	}
}

// bump starts a fresh logical generation. On the (rare) wrap-around to zero
// the stamp arrays are cleared for real, since zero is the stamps' initial
// value and would otherwise read as "seen".
func (s *denseState) bump() {
	s.gen++
	if s.gen == 0 {
		clear(s.nodeSeen)
		clear(s.nodeDone)
		clear(s.facSeen)
		clear(s.facDone)
		s.gen = 1
	}
}

// EdgeSet is a dense epoch-stamped edge membership set drawn from a Scratch:
// the shrinking-stage filters use it in place of a per-query
// map[EdgeID]bool, so installing filters allocates nothing on the hot path.
// Clearing is O(1) — a generation bump invalidates every stamp.
type EdgeSet struct {
	stamp []uint32
	gen   uint32
}

// Add inserts e into the set.
func (s *EdgeSet) Add(e graph.EdgeID) { s.stamp[e] = s.gen }

// Has reports membership of e.
func (s *EdgeSet) Has(e graph.EdgeID) bool { return s.stamp[e] == s.gen }

// reset logically empties the set, clearing for real only on stamp
// wrap-around (zero is the initial stamp value and would read as "present").
func (s *EdgeSet) reset() {
	s.gen++
	if s.gen == 0 {
		clear(s.stamp)
		s.gen = 1
	}
}

// Scratch is a bundle of reusable expansion state for one query at a time:
// each expansion the query starts (d per-cost expansions, or one per source
// location for multi-source queries) draws one dense state unit from it, and
// the query's shrinking stage draws its edge filter set. A Scratch must not
// be shared by concurrent queries; obtain one per query from a Pool and
// return it when the query completes.
type Scratch struct {
	nodes, facs, edges int
	states             []*denseState
	next               int
	edgeSet            *EdgeSet
}

// NewScratch returns a standalone scratch for a network with the given node,
// edge and facility counts, outside any pool — useful for tests and
// long-lived handles (iterators, maintainers) that manage reuse themselves.
func NewScratch(nodes, edges, facs int) *Scratch {
	return &Scratch{nodes: nodes, facs: facs, edges: edges}
}

// state hands out the next free dense state unit, allocating one the first
// time a query needs more expansions than any previous user of this scratch.
func (s *Scratch) state() *denseState {
	if s.next == len(s.states) {
		s.states = append(s.states, newDenseState(s.nodes, s.facs))
	}
	ds := s.states[s.next]
	s.next++
	ds.bump()
	return ds
}

// EdgeSet returns the scratch's dense edge set, emptied for reuse; nil when
// the scratch was built without an edge id space (callers then fall back to
// a map). At most one edge set is live per query — the shrinking-stage
// filter — so the scratch holds a single stamped array.
func (s *Scratch) EdgeSet() *EdgeSet {
	if s == nil || s.edges == 0 {
		return nil
	}
	if s.edgeSet == nil {
		s.edgeSet = &EdgeSet{stamp: make([]uint32, s.edges)}
	}
	s.edgeSet.reset()
	return s.edgeSet
}

// Reset makes every state unit available again. The backing arrays are kept;
// generation stamps invalidate the old contents.
func (s *Scratch) Reset() { s.next = 0 }

// Pool hands out Scratch values sized for one network. It is backed by a
// sync.Pool, so each engine worker amortises its scratch across the queries
// it runs, and idle scratches are reclaimed under memory pressure. A nil
// *Pool is valid and always hands out nil, selecting the map-based
// expansion state.
type Pool struct {
	p sync.Pool
}

// NewPool returns a scratch pool for src, or nil when src does not expose
// dense identifier spaces.
func NewPool(src Source) *Pool {
	sz, ok := src.(Sized)
	if !ok {
		return nil
	}
	nodes, edges, facs := sz.NumNodes(), sz.NumEdges(), sz.NumFacilities()
	p := &Pool{}
	p.p.New = func() any { return NewScratch(nodes, edges, facs) }
	return p
}

// Get obtains a scratch for one query; nil when the pool itself is nil.
func (p *Pool) Get() *Scratch {
	if p == nil {
		return nil
	}
	return p.p.Get().(*Scratch)
}

// Put returns a scratch after its query completes. Safe on nil pools and nil
// scratches.
func (p *Pool) Put(s *Scratch) {
	if p == nil || s == nil {
		return
	}
	s.Reset()
	p.p.Put(s)
}
