package paretopath

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// bruteParetoCosts enumerates all simple paths from -> to by DFS and returns
// the Pareto-optimal cost vectors, sorted. With non-negative weights, cycles
// never improve a vector, so simple paths cover the Pareto cost set.
func bruteParetoCosts(g *graph.Graph, from, to graph.NodeID) []vec.Costs {
	var all []vec.Costs
	visited := make([]bool, g.NumNodes())
	var dfs func(v graph.NodeID, acc vec.Costs)
	dfs = func(v graph.NodeID, acc vec.Costs) {
		if v == to {
			all = append(all, acc.Clone())
			// Continue: paths through `to` and back are never Pareto-better,
			// so stopping here is safe for the cost set.
			return
		}
		visited[v] = true
		for _, a := range g.Arcs(v) {
			if visited[a.Neighbor] {
				continue
			}
			dfs(a.Neighbor, acc.Add(g.Edge(a.Edge).W))
		}
		visited[v] = false
	}
	dfs(from, make(vec.Costs, g.D()))

	var front []vec.Costs
	for i, c := range all {
		dom := false
		for j, o := range all {
			if i == j {
				continue
			}
			if o.Dominates(c) || (o.Equal(c) && j < i) {
				dom = true
				break
			}
		}
		if !dom {
			front = append(front, c)
		}
	}
	sortCosts(front)
	return front
}

func sortCosts(cs []vec.Costs) {
	sort.Slice(cs, func(i, j int) bool {
		for k := range cs[i] {
			if cs[i][k] != cs[j][k] {
				return cs[i][k] < cs[j][k]
			}
		}
		return false
	})
}

func costsOf(paths []Path) []vec.Costs {
	out := make([]vec.Costs, len(paths))
	for i, p := range paths {
		out[i] = p.Costs
	}
	sortCosts(out)
	return out
}

func equalCostSets(a, b []vec.Costs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for k := range a[i] {
			if math.Abs(a[i][k]-b[i][k]) > 1e-9*(1+math.Abs(b[i][k])) {
				return false
			}
		}
	}
	return true
}

func TestParetoPathsDiamond(t *testing.T) {
	// Two routes 0→3: top is fast/expensive, bottom slow/cheap; both Pareto.
	b := graph.NewBuilder(2, false)
	b.AddNodes(4)
	b.AddEdge(0, 1, vec.Of(1, 5))
	b.AddEdge(1, 3, vec.Of(1, 5))
	b.AddEdge(0, 2, vec.Of(4, 1))
	b.AddEdge(2, 3, vec.Of(4, 1))
	g := b.MustBuild()
	paths, err := Paths(g, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d Pareto paths, want 2: %+v", len(paths), paths)
	}
	want := []vec.Costs{vec.Of(2, 10), vec.Of(8, 2)}
	if !equalCostSets(costsOf(paths), want) {
		t.Errorf("costs = %v, want %v", costsOf(paths), want)
	}
	for _, p := range paths {
		if len(p.Edges) != 2 {
			t.Errorf("path %v should traverse 2 edges", p)
		}
	}
}

func TestParetoPathsDominatedRouteExcluded(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(3)
	b.AddEdge(0, 2, vec.Of(1, 1))
	b.AddEdge(0, 1, vec.Of(1, 1))
	b.AddEdge(1, 2, vec.Of(1, 1))
	g := b.MustBuild()
	paths, err := Paths(g, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || !paths[0].Costs.Equal(vec.Of(1, 1)) {
		t.Errorf("paths = %+v, want only the direct edge", paths)
	}
}

func TestParetoPathsSameNode(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(2)
	b.AddEdge(0, 1, vec.Of(1, 1))
	g := b.MustBuild()
	paths, err := Paths(g, 0, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || len(paths[0].Edges) != 0 || !paths[0].Costs.Equal(vec.Of(0, 0)) {
		t.Errorf("self paths = %+v, want single empty path", paths)
	}
}

func TestParetoPathsUnreachable(t *testing.T) {
	b := graph.NewBuilder(1, true)
	b.AddNodes(2)
	b.AddEdge(1, 0, vec.Of(1)) // only 1→0; 0→1 unreachable
	g := b.MustBuild()
	paths, err := Paths(g, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("unreachable destination returned %d paths", len(paths))
	}
}

func TestParetoPathsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 120; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(8)
		topo := gen.RandomConnected(n, rng.Intn(6), rng)
		var costs []vec.Costs
		if trial%2 == 0 {
			costs = gen.RandomIntegerCosts(topo, d, 3, rng)
		} else {
			costs = gen.AssignCosts(topo, d, gen.AntiCorrelated, rng)
		}
		directed := rng.Intn(3) == 0
		g, err := gen.Assemble(topo, costs, nil, directed)
		if err != nil {
			t.Fatal(err)
		}
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))

		want := bruteParetoCosts(g, from, to)
		paths, err := Paths(g, from, to, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := costsOf(paths)
		if !equalCostSets(got, want) {
			t.Fatalf("trial %d (%d nodes, d=%d, directed=%v, %d→%d):\n got %v\nwant %v",
				trial, n, d, directed, from, to, got, want)
		}
		// Each returned path's edges must re-sum to its cost vector.
		for _, p := range paths {
			sum := make(vec.Costs, d)
			for _, e := range p.Edges {
				sum = sum.Add(g.Edge(e).W)
			}
			if !equalCostSets([]vec.Costs{sum}, []vec.Costs{p.Costs}) {
				t.Fatalf("trial %d: path edges sum to %v, reported %v", trial, sum, p.Costs)
			}
		}
	}
}

func TestParetoPathsLabelLimit(t *testing.T) {
	// A ladder of parallel 2-cost choices yields exponentially many Pareto
	// paths; the label cap must trip cleanly.
	b := graph.NewBuilder(2, false)
	const rungs = 12
	b.AddNodes(rungs + 1)
	for i := 0; i < rungs; i++ {
		u, v := graph.NodeID(i), graph.NodeID(i+1)
		b.AddEdge(u, v, vec.Of(1, float64(2+i)))
		b.AddEdge(u, v, vec.Of(float64(2+i), 1))
	}
	g := b.MustBuild()
	_, err := Paths(g, 0, rungs, Options{MaxLabels: 100})
	if !errors.Is(err, ErrLabelLimit) {
		t.Errorf("err = %v, want ErrLabelLimit", err)
	}
	// Unbounded must succeed and return many paths.
	paths, err := Paths(g, 0, rungs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 50 {
		t.Errorf("expected a large Pareto set, got %d", len(paths))
	}
}

func TestPathsToLocation(t *testing.T) {
	// Query location mid-edge: approaching from either side must be
	// considered.
	b := graph.NewBuilder(2, false)
	b.AddNodes(3)
	b.AddEdge(0, 1, vec.Of(10, 1))
	e1 := b.AddEdge(1, 2, vec.Of(4, 4))
	b.AddEdge(0, 2, vec.Of(1, 10))
	g := b.MustBuild()
	paths, err := PathsToLocation(g, 0, graph.Location{Edge: e1, T: 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("expected at least 2 Pareto routes to mid-edge location, got %d", len(paths))
	}
	// Via node 1: (10,1)+(2,2) = (12,3); via node 2: (1,10)+(2,2) = (3,12).
	want := []vec.Costs{vec.Of(3, 12), vec.Of(12, 3)}
	if !equalCostSets(costsOf(paths), want) {
		t.Errorf("costs = %v, want %v", costsOf(paths), want)
	}
	for _, p := range paths {
		if p.Edges[len(p.Edges)-1] != e1 {
			t.Errorf("route must end on the target edge: %v", p.Edges)
		}
	}
}

func TestPathsToLocationInvalid(t *testing.T) {
	b := graph.NewBuilder(1, false)
	b.AddNodes(2)
	b.AddEdge(0, 1, vec.Of(1))
	g := b.MustBuild()
	if _, err := PathsToLocation(g, 0, graph.Location{Edge: 9, T: 0.5}, Options{}); err == nil {
		t.Error("invalid location accepted")
	}
}
