// Package paretopath implements multi-criteria Pareto path computation
// (MCPP, paper Sec. II-D): given a source and a destination in a multi-cost
// network, it returns the skyline over all paths between them — one path per
// non-dominated cost vector. The paper contrasts MCPP with its MCN skyline
// (path skyline vs facility skyline); this package provides the former both
// as a faithful related-work baseline and to materialise the Pareto routes
// to a facility chosen from an MCN skyline.
//
// The implementation is a Martins-style label-correcting search: per-node
// Pareto frontiers of labels, a global queue ordered by cost sum, dominance
// pruning at insertion and at pop. With non-negative costs the label set is
// finite and the search terminates with the exact Pareto set of cost
// vectors.
package paretopath

import (
	"fmt"
	"sort"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Path is one Pareto-optimal route: its cost vector and the edges traversed
// in order.
type Path struct {
	Costs vec.Costs
	Edges []graph.EdgeID
}

// Options bounds the search.
type Options struct {
	// MaxLabels caps the total number of labels created; 0 means unlimited.
	// Pareto path sets can grow exponentially in pathological networks; the
	// cap turns runaway queries into an error.
	MaxLabels int
	// Epsilon enables ε-dominance pruning (Tsaggouris & Zaroliagis style):
	// a label is discarded when an existing label at the node is within a
	// (1+ε) factor on every cost component. Zero keeps the search exact.
	// With ε > 0 the result is an approximate Pareto set: every discarded
	// alternative was (1+ε)-covered at the node where it was pruned; over a
	// route the slack can compound by at most (1+ε) per pruned predecessor.
	// Small values (0.01–0.05) typically collapse exponential frontiers to
	// manageable sizes.
	Epsilon float64
	// Interrupt, when set, is polled once per label pop; a non-nil return
	// aborts the search with that error. The facade wires per-query context
	// cancellation and deadlines through it, the same way core.Options does
	// for preference queries.
	Interrupt func() error
}

// ErrLabelLimit is returned (wrapped) when MaxLabels is exceeded.
var ErrLabelLimit = fmt.Errorf("paretopath: label limit exceeded")

type label struct {
	node  graph.NodeID
	costs vec.Costs
	sum   float64
	pred  *label
	via   graph.EdgeID
}

// labelQueue is a min-heap on (sum, insertion order).
type labelQueue struct {
	a   []*label
	seq []int
	n   int
}

func (q *labelQueue) push(l *label) {
	q.a = append(q.a, l)
	q.seq = append(q.seq, q.n)
	q.n++
	i := len(q.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			break
		}
		q.swap(i, p)
		i = p
	}
}

func (q *labelQueue) less(i, j int) bool {
	if q.a[i].sum != q.a[j].sum {
		return q.a[i].sum < q.a[j].sum
	}
	return q.seq[i] < q.seq[j]
}

func (q *labelQueue) swap(i, j int) {
	q.a[i], q.a[j] = q.a[j], q.a[i]
	q.seq[i], q.seq[j] = q.seq[j], q.seq[i]
}

func (q *labelQueue) pop() (*label, bool) {
	if len(q.a) == 0 {
		return nil, false
	}
	top := q.a[0]
	last := len(q.a) - 1
	q.swap(0, last)
	q.a = q.a[:last]
	q.seq = q.seq[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(q.a) && q.less(l, small) {
			small = l
		}
		if r < len(q.a) && q.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		q.swap(i, small)
		i = small
	}
	return top, true
}

// frontier is a per-node set of mutually non-dominated cost vectors.
type frontier struct {
	labels []*label
	eps    float64
}

// insert adds l unless it is weakly dominated by (or, with ε-pruning,
// (1+ε)-covered by) an existing label; existing labels dominated by l are
// removed. Reports whether l was kept.
func (f *frontier) insert(l *label) bool {
	for _, e := range f.labels {
		if f.covers(e.costs, l.costs) {
			return false
		}
	}
	keep := f.labels[:0]
	for _, e := range f.labels {
		if !l.costs.Dominates(e.costs) {
			keep = append(keep, e)
		}
	}
	f.labels = append(keep, l)
	return true
}

// covers reports whether a renders b redundant: weak dominance, relaxed by
// the (1+ε) factor when ε-pruning is on.
func (f *frontier) covers(a, b vec.Costs) bool {
	if f.eps == 0 {
		return a.WeaklyDominates(b)
	}
	scale := 1 + f.eps
	for i := range a {
		if a[i] > b[i]*scale {
			return false
		}
	}
	return true
}

// Paths computes the Pareto path set from node `from` to node `to` in g.
// Paths are returned sorted by their first cost component; a zero-length
// path (from == to) has an empty edge list and zero costs.
func Paths(g *graph.Graph, from, to graph.NodeID, opt Options) ([]Path, error) {
	if int(from) >= g.NumNodes() || int(to) >= g.NumNodes() {
		return nil, fmt.Errorf("paretopath: node out of range (%d, %d; have %d)", from, to, g.NumNodes())
	}
	fronts := make(map[graph.NodeID]*frontier)
	created := 0
	newLabel := func(node graph.NodeID, costs vec.Costs, pred *label, via graph.EdgeID) (*label, error) {
		created++
		if opt.MaxLabels > 0 && created > opt.MaxLabels {
			return nil, fmt.Errorf("%w (%d labels)", ErrLabelLimit, opt.MaxLabels)
		}
		sum := 0.0
		for _, c := range costs {
			sum += c
		}
		return &label{node: node, costs: costs, sum: sum, pred: pred, via: via}, nil
	}

	var q labelQueue
	start, err := newLabel(from, make(vec.Costs, g.D()), nil, 0)
	if err != nil {
		return nil, err
	}
	fronts[from] = &frontier{eps: opt.Epsilon}
	fronts[from].insert(start)
	q.push(start)

	for {
		if opt.Interrupt != nil {
			if err := opt.Interrupt(); err != nil {
				return nil, err
			}
		}
		l, ok := q.pop()
		if !ok {
			break
		}
		// The label may have been dominated after being queued.
		if !contains(fronts[l.node], l) {
			continue
		}
		for _, arc := range g.Arcs(l.node) {
			w := g.Edge(arc.Edge).W
			next, err := newLabel(arc.Neighbor, l.costs.Add(w), l, arc.Edge)
			if err != nil {
				return nil, err
			}
			fr := fronts[arc.Neighbor]
			if fr == nil {
				fr = &frontier{eps: opt.Epsilon}
				fronts[arc.Neighbor] = fr
			}
			if fr.insert(next) {
				q.push(next)
			}
		}
	}

	fr := fronts[to]
	if fr == nil {
		return nil, nil
	}
	out := make([]Path, 0, len(fr.labels))
	for _, l := range fr.labels {
		out = append(out, Path{Costs: l.costs.Clone(), Edges: trace(l)})
	}
	sort.Slice(out, func(i, j int) bool {
		for c := range out[i].Costs {
			if out[i].Costs[c] != out[j].Costs[c] {
				return out[i].Costs[c] < out[j].Costs[c]
			}
		}
		return len(out[i].Edges) < len(out[j].Edges)
	})
	return out, nil
}

func contains(f *frontier, l *label) bool {
	if f == nil {
		return false
	}
	for _, e := range f.labels {
		if e == l {
			return true
		}
	}
	return false
}

func trace(l *label) []graph.EdgeID {
	var edges []graph.EdgeID
	for cur := l; cur.pred != nil; cur = cur.pred {
		edges = append(edges, cur.via)
	}
	for i, j := 0, len(edges)-1; i < j; i, j = i+1, j-1 {
		edges[i], edges[j] = edges[j], edges[i]
	}
	return edges
}

// PathsToLocation computes the Pareto path set from a node to an arbitrary
// on-edge location: routes via both end-nodes of the target edge (or only
// the upstream end in directed networks) are combined with the partial edge
// weights and Pareto-filtered.
func PathsToLocation(g *graph.Graph, from graph.NodeID, to graph.Location, opt Options) ([]Path, error) {
	if err := to.Validate(g); err != nil {
		return nil, err
	}
	edge := g.Edge(to.Edge)
	w := edge.W

	viaU, err := Paths(g, from, edge.U, opt)
	if err != nil {
		return nil, err
	}
	var candidates []Path
	for _, p := range viaU {
		candidates = append(candidates, Path{
			Costs: p.Costs.Add(w.Scale(to.T)),
			Edges: append(append([]graph.EdgeID{}, p.Edges...), to.Edge),
		})
	}
	if !g.Directed() {
		viaV, err := Paths(g, from, edge.V, opt)
		if err != nil {
			return nil, err
		}
		for _, p := range viaV {
			candidates = append(candidates, Path{
				Costs: p.Costs.Add(w.Scale(1 - to.T)),
				Edges: append(append([]graph.EdgeID{}, p.Edges...), to.Edge),
			})
		}
	}

	// Pareto-filter the combined candidates.
	var out []Path
	for i, p := range candidates {
		dominated := false
		for j, q := range candidates {
			if i == j {
				continue
			}
			if q.Costs.Dominates(p.Costs) || (q.Costs.Equal(p.Costs) && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for c := range out[i].Costs {
			if out[i].Costs[c] != out[j].Costs[c] {
				return out[i].Costs[c] < out[j].Costs[c]
			}
		}
		return len(out[i].Edges) < len(out[j].Edges)
	})
	return out, nil
}
