package paretopath

import (
	"math/rand"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// ε-pruning on the exponential ladder must collapse the frontier far below
// the exact one while staying within the label budget that exact search
// blows through.
func TestEpsilonCollapsesLadder(t *testing.T) {
	b := graph.NewBuilder(2, false)
	const rungs = 14
	b.AddNodes(rungs + 1)
	for i := 0; i < rungs; i++ {
		u, v := graph.NodeID(i), graph.NodeID(i+1)
		b.AddEdge(u, v, vec.Of(1, float64(2+i)))
		b.AddEdge(u, v, vec.Of(float64(2+i), 1))
	}
	g := b.MustBuild()

	exact, err := Paths(g, 0, rungs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Paths(g, 0, rungs, Options{Epsilon: 0.1, MaxLabels: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) == 0 {
		t.Fatal("approximate search returned nothing")
	}
	if len(approx) >= len(exact) {
		t.Errorf("epsilon pruning did not shrink the frontier: %d vs %d", len(approx), len(exact))
	}
	// Approximate routes are still genuine paths with correctly summed
	// costs and mutually non-dominated.
	for i, p := range approx {
		sum := make(vec.Costs, 2)
		for _, e := range p.Edges {
			sum = sum.Add(g.Edge(e).W)
		}
		if !sum.Equal(p.Costs) {
			t.Fatalf("approx path %d: costs %v, edges sum to %v", i, p.Costs, sum)
		}
		for j, q := range approx {
			if i != j && q.Costs.Dominates(p.Costs) {
				t.Fatalf("approx result contains dominated path %d (by %d)", i, j)
			}
		}
	}
}

// Every exact Pareto vector must be covered by some approximate path within
// the compounded slack bound (1+ε)^L, where L bounds the prune chain length
// (use the path hop count of the exact front).
func TestEpsilonCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(900))
	const eps = 0.05
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(7)
		topo := gen.RandomConnected(n, rng.Intn(6), rng)
		costs := gen.RandomIntegerCosts(topo, 2, 5, rng)
		g, err := gen.Assemble(topo, costs, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		from := graph.NodeID(rng.Intn(n))
		to := graph.NodeID(rng.Intn(n))

		exact, err := Paths(g, from, to, Options{})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := Paths(g, from, to, Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			if len(approx) != 0 {
				t.Fatalf("trial %d: approx found paths where exact found none", trial)
			}
			continue
		}
		if len(approx) == 0 {
			t.Fatalf("trial %d: approx empty, exact has %d", trial, len(exact))
		}
		maxHops := 0
		for _, p := range exact {
			if len(p.Edges) > maxHops {
				maxHops = len(p.Edges)
			}
		}
		slack := 1.0
		for i := 0; i < maxHops+1; i++ {
			slack *= 1 + eps
		}
		for _, ep := range exact {
			covered := false
			for _, ap := range approx {
				ok := true
				for i := range ap.Costs {
					if ap.Costs[i] > ep.Costs[i]*slack+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: exact vector %v not covered within (1+ε)^%d by %d approx paths",
					trial, ep.Costs, maxHops+1, len(approx))
			}
		}
	}
}

func TestEpsilonZeroIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		topo := gen.RandomConnected(n, rng.Intn(5), rng)
		costs := gen.RandomIntegerCosts(topo, 2, 4, rng)
		g, err := gen.Assemble(topo, costs, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Paths(g, 0, graph.NodeID(n-1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Paths(g, 0, graph.NodeID(n-1), Options{Epsilon: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !equalCostSets(costsOf(a), costsOf(b)) {
			t.Fatalf("trial %d: Epsilon:0 differs from default", trial)
		}
	}
}
