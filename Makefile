# Single source of truth for the checks CI runs — `make ci` locally is the
# same gate as .github/workflows/ci.yml.

GO ?= go
COVER_MIN ?= 75
FUZZTIME ?= 30s

# Smoke configuration shared by the committed BENCH_PR10.json baseline and
# the CI benchmark-regression gate: both sides must measure the same workload.
# Seven experiments are gated: diskthroughput (QPS paced by the simulated
# device, stable run to run), timedepthroughput (CPU-bound, so its QPS
# moves with background load on shared runners — the wider QPS tolerance
# below absorbs that; a real fast-path regression, the overlay falling back
# to snapshot-level throughput, is a 5-8x drop and still fails loudly),
# cachethroughput (the serving-layer result cache on a Zipfian stream; a
# cache regression collapses the cached rows' QPS by orders of magnitude, so
# runner noise never masks it), faultthroughput (5% injected transient
# read faults through the retry layer; the faulty row's io_retries is near-
# deterministic for the fixed seed, so retry-cost regressions are visible),
# prunethroughput (lower-bound pruning index on vs off; the expanded-
# node counts are fully seed-deterministic, so the gate holds the index's
# work reduction tightly while the QPS rows get the wide tolerance), and
# clusterthroughput (the gateway fronting 1/2/4 device-paced replicas; each
# replica's simulated disk caps its read bandwidth, so the QPS-vs-replicas
# curve is capacity-determined and a routing regression flattens it beyond
# the tolerance), and soakthroughput (sustained /v1/query load against one
# cached in-process replica, binary vs JSON codec; the binary rows must not
# fall below the JSON rows, so a codec or negotiation regression shows up as
# a QPS drop on the binary rows). memthroughput/throughput stay available
# for manual benchdiff comparisons.
BENCH_SMOKE_FLAGS = -exp diskthroughput,timedepthroughput,cachethroughput,faultthroughput,prunethroughput,clusterthroughput,soakthroughput -scale 0.05 -queries 4 -seed 1
BENCH_BASELINE = BENCH_PR10.json
BENCH_QPS_TOL = 0.40

# Long-mode chaos run: randomized fault schedules per invariant class (see
# internal/chaos). CHAOS_SCHEDULES scales every class at once; CI runs the
# -short smoke inside `make cover` and as a dedicated chaos job.
CHAOS_SCHEDULES ?= 1000

.PHONY: build examples test race bench benchmem profile fmt vet lint cover ci \
	serve clean benchgate benchbaseline vulncheck fuzz docscheck chaos chaossmoke \
	cluster-smoke soak-smoke

build:
	$(GO) build ./...

# Explicit examples build: ./... already covers them, but CI runs this as a
# separate step so a doc-snippet regression is named in the failing step
# rather than buried in the main build.
examples:
	$(GO) build ./examples/...

# Known-vulnerability scan (govulncheck: symbol-level reachability against
# the Go vulnerability database). Skips with a notice when the tool is not
# installed (offline dev boxes); the CI vulncheck job always has it.
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark: a smoke run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Allocation-sensitive benchmarks with -benchmem: the flat-path pop loop and
# the in-memory batch executor must stay allocation-free in steady state.
benchmem:
	$(GO) test -run '^$$' -bench 'BenchmarkExpansion|BenchmarkBatchSkylineMem' -benchtime 1x -benchmem ./...

# CPU+heap profiles of the expansion pop loop; inspect with
# `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkExpansion -benchtime 200x \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/flat

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet (errcheck, staticcheck, govet shadow — see
# .golangci.yml). Skips with a notice when golangci-lint is not installed;
# the CI lint job always has it.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "lint: golangci-lint not installed, skipping (CI runs it)"; \
	fi

# Coverage profile with a minimum-total gate (COVER_MIN, default 75%). Runs
# under the race detector so CI gets race + coverage from one pass over the
# test suite instead of two.
cover:
	$(GO) test -race -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -n 20
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t + 0 < min + 0) { printf "FAIL: total coverage %.1f%% below the %d%% gate\n", t, min; exit 1 } \
		printf "coverage gate ok: %.1f%% >= %d%%\n", t, min }'

# Benchmark-regression gate: run the smoke benchmarks and compare against the
# committed baseline. Fails on a QPS drop beyond BENCH_QPS_TOL or any >25%
# physical-I/O growth.
benchgate: build
	$(GO) run ./cmd/mcnbench $(BENCH_SMOKE_FLAGS) -json bench_current.json
	$(GO) run ./cmd/benchdiff -base $(BENCH_BASELINE) -new bench_current.json -qps-tol $(BENCH_QPS_TOL) -v

# Regenerate the committed baseline (run on the reference machine only, then
# commit the result). -runs 5 keeps each row's minimum QPS so a lucky fast
# draw cannot become a baseline every ordinary CI run fails against; the
# deterministic metrics are identical across runs.
benchbaseline: build
	$(GO) run ./cmd/mcnbench $(BENCH_SMOKE_FLAGS) -runs 5 -json $(BENCH_BASELINE)

# Chaos harness. chaossmoke is the CI job: the -short schedule counts under
# the race detector (~30s). chaos is the long-mode run (CHAOS_SCHEDULES
# randomized fault schedules, default 1000) for release qualification or
# fault-layer changes.
chaossmoke:
	$(GO) test -race -short -count=1 ./internal/chaos

# Cluster tier smoke: the gateway equivalence/failover suite (3 in-process
# replicas behind httptest) under the race detector. Also part of the plain
# test suite; this target is the dedicated CI step so a scatter-gather or
# failover regression is named in the failing step.
cluster-smoke:
	$(GO) test -race -count=1 ./internal/cluster

# Soak smoke: mcnsoak drives one second of sustained /v1/query load through
# each codec against an in-process replica, then one second through the
# gateway path. Exits non-zero when any request fails, so a wire-protocol or
# negotiation regression is named in its own CI step.
soak-smoke: build
	$(GO) run ./cmd/mcnsoak -duration 1s -clients 4 -scale 0.02 -queries 8
	$(GO) run ./cmd/mcnsoak -duration 1s -clients 4 -replicas 2 -scale 0.02 -queries 8

chaos:
	CHAOS_SCHEDULES=$(CHAOS_SCHEDULES) $(GO) test -race -count=1 -timeout 60m ./internal/chaos

# Native Go fuzzing sessions over the query invariants: skyline (mutual
# non-dominance + maximality vs the materialised baseline), top-k (score
# monotonicity + NaiveTopK agreement + pruned-vs-unpruned byte-identity) and
# within (budget soundness/completeness + pruned-vs-unpruned). `go test`
# accepts one -fuzz target per invocation, so the targets run sequentially,
# each for FUZZTIME. CI runs a short smoke (FUZZTIME=10s); locally run with a
# longer budget to hunt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSkylineInvariants -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzTopKInvariants -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzWithinInvariants -fuzztime $(FUZZTIME) ./internal/core

# Docs freshness: the markdown dead-link/anchor and package-comment checks
# (internal/docscheck, also part of the ordinary test suite) plus a `go doc`
# smoke over every package, so a doc comment that no longer renders fails
# loudly here instead of rotting on pkg.go.dev.
docscheck:
	$(GO) test ./internal/docscheck
	@for pkg in $$($(GO) list ./...); do \
		$(GO) doc $$pkg >/dev/null || exit 1; \
	done; echo "go doc smoke ok over $$($(GO) list ./... | wc -l) packages"

# cover subsumes race (it runs the suite with -race), so ci does not run
# both.
ci: fmt vet build examples cover bench benchmem lint vulncheck docscheck

# Serve a synthetic network locally (see cmd/mcnserve for flags).
serve:
	$(GO) run ./cmd/mcnserve -synthetic

clean:
	$(GO) clean ./...
	rm -f coverage.out bench_current.json
