# Single source of truth for the checks CI runs — `make ci` locally is the
# same gate as .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench fmt vet ci serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark: a smoke run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench

# Serve a synthetic network locally (see cmd/mcnserve for flags).
serve:
	$(GO) run ./cmd/mcnserve -synthetic

clean:
	$(GO) clean ./...
