# Single source of truth for the checks CI runs — `make ci` locally is the
# same gate as .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race bench benchmem profile fmt vet ci serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every benchmark: a smoke run, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Allocation-sensitive benchmarks with -benchmem: the flat-path pop loop and
# the in-memory batch executor must stay allocation-free in steady state.
benchmem:
	$(GO) test -run '^$$' -bench 'BenchmarkExpansion|BenchmarkBatchSkylineMem' -benchtime 1x -benchmem ./...

# CPU+heap profiles of the expansion pop loop; inspect with
# `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
profile:
	$(GO) test -run '^$$' -bench BenchmarkExpansion -benchtime 200x \
		-cpuprofile cpu.prof -memprofile mem.prof ./internal/flat

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race bench benchmem

# Serve a synthetic network locally (see cmd/mcnserve for flags).
serve:
	$(GO) run ./cmd/mcnserve -synthetic

clean:
	$(GO) clean ./...
