package mcn

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// batchNetworks returns in-memory and disk-resident views of one synthetic
// network, plus query locations on it.
func batchNetworks(t *testing.T) (map[string]*Network, []Location) {
	t.Helper()
	g, err := Synthetic(SyntheticConfig{Nodes: 1_500, Facilities: 250, D: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "batch.mcn")
	if err := CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(path, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return map[string]*Network{"memory": FromGraph(g), "disk": db}, RandomQueries(g, 10, 3)
}

// Batch* facade methods must agree with their sequential counterparts over
// both network backends (run with -race).
func TestBatchMethodsMatchSequential(t *testing.T) {
	nets, locs := batchNetworks(t)
	agg := WeightedSum(0.4, 0.4, 0.2)
	budget := Of(300, 300, 300)
	ctx := context.Background()

	for name, net := range nets {
		t.Run(name, func(t *testing.T) {
			sky, err := net.BatchSkyline(ctx, locs, 8, WithEngine(CEA))
			if err != nil {
				t.Fatal(err)
			}
			top, err := net.BatchTopK(ctx, locs, agg, 3, 8)
			if err != nil {
				t.Fatal(err)
			}
			near, err := net.BatchNearest(ctx, locs, 1, 4, 8)
			if err != nil {
				t.Fatal(err)
			}
			within, err := net.BatchWithin(ctx, locs, budget, 8)
			if err != nil {
				t.Fatal(err)
			}
			for i, loc := range locs {
				wantSky, err := net.Skyline(ctx, loc, WithEngine(CEA))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(idsSorted(sky[i]), idsSorted(wantSky)) {
					t.Errorf("query %d: batch skyline %v != %v", i, idsSorted(sky[i]), idsSorted(wantSky))
				}
				wantTop, err := net.TopK(ctx, loc, agg, 3)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(top[i].IDs(), wantTop.IDs()) {
					t.Errorf("query %d: batch top-k %v != %v", i, top[i].IDs(), wantTop.IDs())
				}
				wantNear, err := net.Nearest(ctx, loc, 1, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(near[i].Facilities) != len(wantNear) {
					t.Errorf("query %d: batch nearest %d results, want %d", i, len(near[i].Facilities), len(wantNear))
				}
				wantWithin, err := net.Within(ctx, loc, budget)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(within[i].IDs(), wantWithin.IDs()) {
					t.Errorf("query %d: batch within %v != %v", i, within[i].IDs(), wantWithin.IDs())
				}
			}
		})
	}
}

// Heterogeneous Batch calls report per-request outcomes and an executor
// reused across batches keeps aggregate statistics.
func TestBatchHeterogeneousAndStats(t *testing.T) {
	nets, locs := batchNetworks(t)
	net := nets["memory"]
	agg := WeightedSum(1, 1, 1)

	reqs := []BatchRequest{
		SkylineRequest(locs[0], WithEngine(CEA)),
		TopKRequest(locs[1], agg, 2),
		NearestRequest(locs[2], 0, 3),
		WithinRequest(locs[3], Of(250, 250, 250)),
		TopKRequest(locs[4], agg, 0), // invalid k: per-request error, not batch failure
	}
	resps := net.Batch(context.Background(), reqs, ExecutorConfig{Workers: 4})
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resps), len(reqs))
	}
	for i, resp := range resps[:4] {
		if resp.Err != nil {
			t.Errorf("request %d: %v", i, resp.Err)
		}
		if resp.Latency <= 0 {
			t.Errorf("request %d: no latency recorded", i)
		}
	}
	if resps[4].Err == nil {
		t.Error("invalid k: expected a per-request error")
	}

	exec := net.NewExecutor(ExecutorConfig{Workers: 4, Timeout: time.Minute})
	for i := 0; i < 3; i++ {
		if resp := exec.Do(context.Background(), SkylineRequest(locs[i])); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if s := exec.Stats(); s.Completed != 3 || s.Queries() != 3 {
		t.Errorf("executor stats = %+v, want 3 completed", s)
	}
}

// Cancellation propagates into running queries via the interrupt hook.
func TestBatchCancellation(t *testing.T) {
	nets, locs := batchNetworks(t)
	net := nets["memory"]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.BatchSkyline(ctx, locs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
