package mcn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/testnet"
)

func TestNearestMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1100))
	for trial := 0; trial < 40; trial++ {
		d := 1 + rng.Intn(3)
		topo := gen.RandomConnected(3+rng.Intn(25), rng.Intn(10), rng)
		costs := gen.AssignCosts(topo, d, gen.Independent, rng)
		pls := gen.UniformFacilities(topo, 1+rng.Intn(15), rng)
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			t.Fatal(err)
		}
		net := FromGraph(g)
		loc := Location{Edge: EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		ci := rng.Intn(d)
		k := 1 + rng.Intn(6)

		got, err := net.Nearest(ctx, loc, ci, k)
		if err != nil {
			t.Fatal(err)
		}
		oracle := testnet.FacilityCosts(g, loc, ci)
		var want []float64
		for _, c := range oracle {
			if !math.IsInf(c, 1) {
				want = append(want, c)
			}
		}
		sort.Float64s(want)
		if k < len(want) {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i, f := range got {
			if math.Abs(f.Score-want[i]) > 1e-9*(1+want[i]) {
				t.Fatalf("trial %d: NN %d cost %g, oracle %g", trial, i, f.Score, want[i])
			}
			if math.Abs(f.Costs[ci]-f.Score) > 1e-12 {
				t.Fatalf("trial %d: cost vector inconsistent with score", trial)
			}
		}
	}
}

func TestNearestErrors(t *testing.T) {
	topo := gen.Path(3)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	net := FromGraph(g)
	loc := Location{Edge: 0, T: 0.5}
	if _, err := net.Nearest(ctx, loc, 5, 1); err == nil {
		t.Error("out-of-range cost index accepted")
	}
	if _, err := net.Nearest(ctx, loc, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	got, err := net.Nearest(ctx, loc, 0, 3)
	if err != nil || len(got) != 0 {
		t.Errorf("no facilities: got %v, %v", got, err)
	}
}
