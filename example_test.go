package mcn_test

import (
	"context"
	"fmt"

	"mcn"
)

// buildDowntown assembles the small two-cost network used by the examples:
// costs are (driving minutes, toll dollars).
func buildDowntown() (*mcn.Graph, mcn.Location) {
	b := mcn.NewBuilder(2, false)
	a := b.AddNode(0, 0)
	c := b.AddNode(1, 0)
	d := b.AddNode(1, 1)
	e := b.AddNode(0, 1)
	ac := b.AddEdge(a, c, mcn.Of(5, 2))
	cd := b.AddEdge(c, d, mcn.Of(4, 1))
	b.AddEdge(a, e, mcn.Of(9, 0))
	ed := b.AddEdge(e, d, mcn.Of(8, 0))
	b.AddFacility(cd, 0.5) // shop 0: via the toll road
	b.AddFacility(ed, 0.5) // shop 1: via the free road
	b.AddFacility(ac, 0.9) // shop 2: close, small toll
	g := b.MustBuild()
	loc, _ := mcn.LocationAtNode(g, a)
	return g, loc
}

func ExampleNetwork_Skyline() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	res, _ := net.Skyline(context.Background(), q, mcn.WithEngine(mcn.CEA))
	fmt.Println("skyline size:", len(res.Facilities))
	// Output:
	// skyline size: 3
}

func ExampleNetwork_SkylineSeq() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	// Stream skyline members as they are confirmed; break to stop early.
	count := 0
	for _, err := range net.SkylineSeq(context.Background(), q) {
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		count++
	}
	fmt.Println("streamed facilities:", count)
	// Output:
	// streamed facilities: 3
}

func ExampleNetwork_TopK() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	// Time matters four times as much as tolls.
	res, _ := net.TopK(context.Background(), q, mcn.WeightedSum(0.8, 0.2), 2)
	for i, f := range res.Facilities {
		fmt.Printf("#%d shop %d score %.2f\n", i+1, f.ID, f.Score)
	}
	// Output:
	// #1 shop 2 score 3.84
	// #2 shop 0 score 5.70
}

func ExampleNetwork_TopKSeq() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	// Pull next-best results on demand, without fixing k in advance.
	for f, err := range net.TopKSeq(context.Background(), q, mcn.WeightedSum(0.8, 0.2)) {
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("shop %d: %.2f\n", f.ID, f.Score)
		if f.Score > 6 {
			break // enough — aborts the remaining search
		}
	}
	// Output:
	// shop 2: 3.84
	// shop 0: 5.70
	// shop 1: 10.40
}

func ExampleNetwork_TopKIterator() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	it, _ := net.TopKIterator(context.Background(), q, mcn.WeightedSum(0.8, 0.2))
	defer it.Close() // returns the iterator's pooled expansion state
	for {
		f, ok, _ := it.Next()
		if !ok {
			break
		}
		fmt.Printf("shop %d: %.2f\n", f.ID, f.Score)
	}
	// Output:
	// shop 2: 3.84
	// shop 0: 5.70
	// shop 1: 10.40
}

func ExampleNetwork_Within() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	// Everything reachable in at most 8 minutes and 2 dollars.
	res, _ := net.Within(context.Background(), q, mcn.Of(8, 2))
	fmt.Println("within budget:", len(res.Facilities))
	// Output:
	// within budget: 2
}

func ExampleNetwork_Nearest() {
	g, q := buildDowntown()
	net := mcn.FromGraph(g)

	nn, _ := net.Nearest(context.Background(), q, 0, 1) // nearest by driving time
	fmt.Printf("nearest shop: %d at %.1f min\n", nn[0].ID, nn[0].Score)
	// Output:
	// nearest shop: 2 at 4.5 min
}
